//! Table 2 — combined complexity of conjunctive monadic queries, all four
//! cells:
//!
//! | query \ width | bounded | unbounded |
//! |---|---|---|
//! | sequential | PTIME (SEQ) | PTIME (SEQ) |
//! | nonsequential | PTIME (Thm 4.7) | co-NP-complete (Thm 4.6) |

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use indord_bench::workloads;
use indord_core::sym::Vocabulary;
use indord_entail::{bounded, paths, seq};
use indord_reductions::thm46;
use indord_solvers::dnf::Dnf;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(100))
}

/// Sequential × bounded width: SEQ scaling in |D| at k = 2.
fn bench_seq_bounded(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2/seq-bounded");
    let mut r = workloads::rng(20);
    let p = workloads::random_flexiword(&mut r, 8, 3);
    for len in [64usize, 256, 1024, 4096] {
        let db = workloads::observers_db_le(&mut r, 2, len / 2, 3, 0.2);
        g.throughput(Throughput::Elements(db.len() as u64));
        g.bench_with_input(BenchmarkId::new("seq", db.len()), &db, |b, db| {
            b.iter(|| seq::entails(db, &p))
        });
    }
    g.finish();
}

/// Sequential × unbounded width: SEQ scaling in k at fixed |D| — the
/// PTIME claim of the table's top-right cell.
fn bench_seq_unbounded(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2/seq-unbounded");
    let mut r = workloads::rng(21);
    let p = workloads::random_flexiword(&mut r, 8, 3);
    for k in [1usize, 4, 16, 64] {
        let db = workloads::observers_db_le(&mut r, k, 512 / k, 3, 0.2);
        g.bench_with_input(BenchmarkId::new("seq-width", k), &db, |b, db| {
            b.iter(|| seq::entails(db, &p))
        });
    }
    g.finish();
}

/// Nonsequential × bounded width: Theorem 4.7 scaling in |D| at
/// k ∈ {1, 2, 3} — the empirical exponent should track k+1.
fn bench_nonseq_bounded(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2/nonseq-bounded");
    let mut r = workloads::rng(22);
    let q = workloads::ladder_query(&mut r, 3, 3);
    for k in [1usize, 2, 3] {
        for len in [16usize, 32, 64] {
            let db = workloads::observers_db_le(&mut r, k, len, 3, 0.2);
            g.bench_with_input(
                BenchmarkId::new(format!("bounded-k{k}"), db.len()),
                &db,
                |b, db| b.iter(|| bounded::entails(db, &q)),
            );
        }
    }
    g.finish();
}

/// Nonsequential × unbounded width: the Theorem 4.6 family — width grows
/// with the formula, and the cost grows super-polynomially.
fn bench_nonseq_unbounded(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2/nonseq-unbounded");
    for m in [4usize, 6, 8] {
        let mut r = workloads::rng(23 + m as u64);
        let dnf = Dnf::random(&mut r, m, 2 * m, true);
        let mut voc = Vocabulary::new();
        let out = thm46::build(&mut voc, &dnf);
        g.bench_with_input(BenchmarkId::new("thm46", m), &out, |b, out| {
            b.iter(|| paths::entails(&out.db, &out.query))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_seq_bounded, bench_seq_unbounded, bench_nonseq_bounded, bench_nonseq_unbounded
}
criterion_main!(benches);
