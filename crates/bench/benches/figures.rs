//! The paper's figures as executable workloads.
//!
//! * Fig. 1 — minimal-model enumeration of the Example 1.1 evidence;
//! * Fig. 2 — gene-alignment feasibility for growing sequences;
//! * Figs. 3/4 — the ternary-disjunction gadget, independent vs width-two;
//! * Fig. 5 — `Paths(Φ)` extraction;
//! * Fig. 6 — the `SEQ` algorithm itself (throughput);
//! * Figs. 7/8 — the Theorem 4.6 construction (build cost + decision).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use indord_bench::workloads;
use indord_core::parse::parse_database;
use indord_core::sym::Vocabulary;
use indord_core::toposort;
use indord_entail::{disjunctive, seq};
use indord_reductions::{thm32, thm46};
use indord_solvers::dnf::Dnf;
use indord_solvers::mono3sat::Mono3Sat;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(100))
}

fn bench_fig1_models(c: &mut Criterion) {
    let mut voc = Vocabulary::new();
    let db = parse_database(
        &mut voc,
        "IC(z1, z2, A); IC(z3, z4, B); z1 < z2 < z3 < z4;
         IC(u1, u3, A); IC(u2, u4, B); u1 < u2 < u3 < u4;",
    )
    .unwrap();
    let nd = db.normalize().unwrap();
    c.benchmark_group("fig1")
        .bench_function("enumerate-minimal-models", |b| {
            b.iter(|| {
                let mut count = 0u64;
                toposort::for_each_minimal_model(&nd, &mut |_| {
                    count += 1;
                    true
                })
                .unwrap();
                count
            })
        });
}

fn bench_fig2_alignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/alignment");
    let mut voc = Vocabulary::new();
    let a = voc.monadic_pred("A");
    let cpred = voc.monadic_pred("C");
    let gpred = voc.monadic_pred("G");
    let t = voc.monadic_pred("T");
    let bases = [a, cpred, gpred, t];
    for len in [4usize, 8, 16] {
        let mut r = workloads::rng(500 + len as u64);
        // two random sequences as chains
        let mk = |r: &mut rand::rngs::StdRng| -> Vec<indord_core::bitset::PredSet> {
            use rand::Rng;
            (0..len)
                .map(|_| indord_core::bitset::PredSet::singleton(bases[r.gen_range(0..4usize)]))
                .collect()
        };
        let db = indord_wqo::union_of_words(&[mk(&mut r), mk(&mut r)]);
        // forbid A–G and C–T pairings
        let forbid = |x, y| {
            let graph = indord_core::ordgraph::OrderGraph::from_dag_edges(1, &[]).unwrap();
            indord_core::monadic::MonadicQuery::new(graph, vec![[x, y].into_iter().collect()])
        };
        let violations = vec![forbid(a, gpred), forbid(cpred, t)];
        g.bench_with_input(BenchmarkId::new("feasible", len), &db, |b, db| {
            b.iter(|| disjunctive::check(db, &violations).unwrap().holds())
        });
    }
    g.finish();
}

fn bench_fig34_gadget(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig34/gadget");
    let inst = Mono3Sat {
        n_vars: 3,
        pos_clauses: vec![[0, 1, 2]],
        neg_clauses: vec![],
    };
    g.bench_function("build-independent", |b| {
        b.iter(|| {
            let mut voc = Vocabulary::new();
            thm32::build(&mut voc, &inst, thm32::Layout::Independent)
        })
    });
    g.bench_function("build-width-two", |b| {
        b.iter(|| {
            let mut voc = Vocabulary::new();
            thm32::build(&mut voc, &inst, thm32::Layout::WidthTwo)
        })
    });
    g.finish();
}

fn bench_fig5_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5/paths");
    let mut r = workloads::rng(501);
    for cols in [4usize, 8, 12] {
        let q = workloads::ladder_query(&mut r, cols, 3);
        g.throughput(Throughput::Elements(q.path_count() as u64));
        g.bench_with_input(BenchmarkId::new("enumerate", cols), &q, |b, q| {
            b.iter(|| q.paths().count())
        });
    }
    g.finish();
}

fn bench_fig6_seq(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6/seq");
    let mut r = workloads::rng(502);
    for len in [256usize, 1024, 4096, 16384] {
        let db = workloads::observers_db_le(&mut r, 1, len, 4, 0.3);
        let p = workloads::random_flexiword(&mut r, 12, 4);
        g.throughput(Throughput::Elements(len as u64));
        g.bench_with_input(BenchmarkId::new("seq", len), &(db, p), |b, (db, p)| {
            b.iter(|| seq::entails(db, p))
        });
    }
    g.finish();
}

fn bench_fig78_thm46(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig78/thm46");
    for m in [4usize, 8] {
        let mut r = workloads::rng(503 + m as u64);
        let dnf = Dnf::random(&mut r, m, m, true);
        g.bench_with_input(BenchmarkId::new("build", m), &dnf, |b, dnf| {
            b.iter(|| {
                let mut voc = Vocabulary::new();
                thm46::build(&mut voc, dnf)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig1_models, bench_fig2_alignment, bench_fig34_gadget,
              bench_fig5_paths, bench_fig6_seq, bench_fig78_thm46
}
criterion_main!(benches);
