//! The crossover the paper remarks on after Corollary 4.4: the path-based
//! algorithm is linear in |D| but exponential in the query's path count,
//! while the Theorem 4.7 search is polynomial in both at exponent k+1 —
//! so which engine wins depends on the workload. This bench sweeps the
//! ladder query's column count at fixed |D| and vice versa.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use indord_bench::workloads;
use indord_entail::{bounded, paths};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(100))
}

fn bench_query_growth(c: &mut Criterion) {
    let mut g = c.benchmark_group("crossover/query-growth");
    let mut r = workloads::rng(90);
    let db = workloads::observers_db_le(&mut r, 2, 24, 3, 0.2);
    for cols in [2usize, 4, 6, 8, 10] {
        let q = workloads::ladder_query(&mut r, cols, 3);
        g.bench_with_input(BenchmarkId::new("paths", cols), &q, |b, q| {
            b.iter(|| paths::entails(&db, q))
        });
        g.bench_with_input(BenchmarkId::new("bounded", cols), &q, |b, q| {
            b.iter(|| bounded::entails(&db, q))
        });
    }
    g.finish();
}

fn bench_db_growth(c: &mut Criterion) {
    let mut g = c.benchmark_group("crossover/db-growth");
    let mut r = workloads::rng(91);
    let q = workloads::ladder_query(&mut r, 3, 3);
    for len in [16usize, 64, 256, 1024] {
        let db = workloads::observers_db_le(&mut r, 2, len / 2, 3, 0.2);
        g.bench_with_input(BenchmarkId::new("paths", db.len()), &db, |b, db| {
            b.iter(|| paths::entails(db, &q))
        });
        g.bench_with_input(BenchmarkId::new("bounded", db.len()), &db, |b, db| {
            b.iter(|| bounded::entails(db, &q))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_query_growth, bench_db_growth
}
criterion_main!(benches);
