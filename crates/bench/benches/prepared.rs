//! Prepared vs. unprepared evaluation on repeated-query workloads.
//!
//! The serving pattern the prepare/execute split targets: a fixed set of
//! queries evaluated over and over against one database. The unprepared
//! path re-runs N1/N2 normalization, the monadic-view construction, and
//! full query compilation on every call; the prepared path pays for both
//! once (`Engine::prepare` + a warm `Session`) and then only evaluates.
//!
//! The `ne-*` groups are the §7 `!=`-heavy workloads: queries with `!=`
//! atoms (expanded at prepare time, evaluated on the session scaffold)
//! and databases with `!=` constraints (evaluated through the
//! sub-scaffold projection). Their one-shot leg re-expands and rebuilds
//! a scaffold per call — exactly what the scaffold-routed §7 paths
//! amortize away.
//!
//! The `read-write` group is the mixed serving workload: every iteration
//! performs one write (a label-only fact insert or an acyclic cross-chain
//! order edge) followed by one prepared disjunctive evaluation. The
//! `incremental` leg runs the default session (the scaffold survives the
//! write via incremental closure/topo/pair-table maintenance); the
//! `rebuild` leg pins the pre-incremental behavior
//! (`Session::with_scaffold_rebuild_on_write`) where every write drops
//! the scaffold and the next read pays a full rebuild. The group's
//! recorded figures are *steady state* — criterion's long loop keeps
//! inserting genuinely new edges, so the graph densifies far beyond any
//! single serving window; the `rw-speedup-summary` report line measures
//! the same op stream over a warm serving window instead (that is the
//! ≥ 20x acceptance number). The `eviction` group measures the
//! `Session::with_max_pairs` bound (LRU eviction + transparent
//! recompute) against an unbounded table.
//!
//! The final group prints the measured speedups explicitly — the
//! acceptance targets are ≥ 2× for the `[<,<=]` serving mix, ≥ 10× for
//! the `!=`-heavy workloads, and ≥ 20× for incremental scaffold
//! maintenance vs drop-and-rebuild on the read/write mix, all at
//! |D| ≈ 1k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use indord_bench::workloads;
use indord_core::atom::Term;
use indord_core::database::Database;
use indord_core::parse::parse_query;
use indord_core::query::DnfQuery;
use indord_core::session::Session;
use indord_core::sym::Vocabulary;
use indord_entail::{Engine, PreparedQuery};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(100))
}

/// The disjunctive shape of the serving mix — also the workload of the
/// `prepared/serving` protocol-overhead measurements (index 2 of
/// [`query_mix`]).
const DISJUNCTIVE_QUERY: &str = "(exists s. P0(s) & P1(s)) | exists s t. P0(s) & s < t & P2(t)";

/// The query mix of a plausible monitoring service: sequential,
/// branching, and disjunctive shapes over three monadic predicates.
fn query_mix(voc: &mut Vocabulary) -> Vec<DnfQuery> {
    [
        "exists a b c. P0(a) & a < b & P1(b) & b <= c & P2(c)",
        "exists a b c. P0(a) & a < b & P1(b) & a < c & P2(c)",
        DISJUNCTIVE_QUERY,
    ]
    .iter()
    .map(|t| parse_query(voc, t).expect("well-formed query"))
    .collect()
}

fn setup(len: usize) -> (Vocabulary, Database, Vec<DnfQuery>) {
    let mut voc = Vocabulary::new();
    let mut rng = workloads::rng(0x5EED + len as u64);
    let db = workloads::observers_database(&mut voc, &mut rng, 2, len / 2, 3, 0.2);
    let queries = query_mix(&mut voc);
    (voc, db, queries)
}

/// The §7 query mix: `!=` atoms in sequential, chained, and disjunctive
/// positions — each expands into 2–3 `[<,<=]` disjuncts at prepare time.
fn ne_query_mix(voc: &mut Vocabulary) -> Vec<DnfQuery> {
    [
        "exists s t. P0(s) & P1(t) & s != t",
        "exists s t u. P0(s) & s != t & P1(t) & t <= u & P2(u)",
        "(exists s t. P0(s) & P2(t) & s != t) | exists s. P0(s) & P1(s) & P2(s)",
    ]
    .iter()
    .map(|t| parse_query(voc, t).expect("well-formed != query"))
    .collect()
}

/// A `[<,<=]` database with `!=`-heavy queries (the query-`!=` route).
fn setup_ne_query(len: usize) -> (Vocabulary, Database, Vec<DnfQuery>) {
    let mut voc = Vocabulary::new();
    let mut rng = workloads::rng(0x7EED + len as u64);
    let db = workloads::observers_database(&mut voc, &mut rng, 2, len / 2, 3, 0.2);
    let queries = ne_query_mix(&mut voc);
    (voc, db, queries)
}

/// A database carrying `!=` constraints (the sub-scaffold route): every
/// monadic query — with or without its own `!=` atoms — evaluates
/// through the restricted Theorem 5.3 search.
fn setup_ne_db(len: usize) -> (Vocabulary, Database, Vec<DnfQuery>) {
    let mut voc = Vocabulary::new();
    let mut rng = workloads::rng(0x8EED + len as u64);
    let mut db = workloads::observers_database(&mut voc, &mut rng, 2, len / 2, 3, 0.2);
    workloads::add_ne_pairs(&mut voc, &mut db, &mut rng, 2, len / 2, 8);
    let mut queries = ne_query_mix(&mut voc);
    queries.push(
        parse_query(
            &mut voc,
            "(exists s. P0(s) & P1(s)) | exists s t. P0(s) & s < t & P2(t)",
        )
        .expect("well-formed disjunction"),
    );
    (voc, db, queries)
}

fn bench_repeated_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("prepared/repeat");
    for len in [64usize, 256, 1024] {
        let (voc, db, queries) = setup(len);
        let eng = Engine::new(&voc);
        let q = &queries[0];
        g.throughput(Throughput::Elements(db.len() as u64));
        g.bench_with_input(BenchmarkId::new("unprepared", len), &db, |b, db| {
            b.iter(|| eng.entails(db, q).unwrap())
        });
        let session = Session::new(db.clone());
        let pq = eng.prepare(q).unwrap();
        g.bench_with_input(BenchmarkId::new("prepared", len), &session, |b, session| {
            b.iter(|| eng.entails_prepared(session, &pq).unwrap())
        });
    }
    g.finish();
}

/// The §7 `!=`-heavy repeated-query workloads: `ne-query` exercises
/// query-side `!=` expansion on a `[<,<=]` database, `ne-db` the
/// sub-scaffold-restricted search on a `!=` database. The unprepared leg
/// is the one-shot §7 path (re-expansion + fresh scaffold per call).
fn bench_ne_workloads(c: &mut Criterion) {
    for (group, setup_fn) in [
        (
            "prepared/ne-query",
            setup_ne_query as fn(usize) -> (Vocabulary, Database, Vec<DnfQuery>),
        ),
        ("prepared/ne-db", setup_ne_db),
    ] {
        let mut g = c.benchmark_group(group);
        for len in [256usize, 1024] {
            let (voc, db, queries) = setup_fn(len);
            let eng = Engine::new(&voc);
            let q = &queries[0];
            g.throughput(Throughput::Elements(db.len() as u64));
            g.bench_with_input(BenchmarkId::new("one-shot", len), &db, |b, db| {
                b.iter(|| eng.entails(db, q).unwrap())
            });
            let session = Session::new(db.clone());
            let pq = eng.prepare(q).unwrap();
            g.bench_with_input(BenchmarkId::new("prepared", len), &session, |b, session| {
                b.iter(|| eng.entails_prepared(session, &pq).unwrap())
            });
            // The whole != mix as a prepared batch on one warm session.
            let prepared: Vec<PreparedQuery> =
                queries.iter().map(|q| eng.prepare(q).unwrap()).collect();
            g.bench_with_input(BenchmarkId::new("batch", len), &session, |b, session| {
                b.iter(|| eng.entails_batch(session, &prepared).unwrap())
            });
        }
        g.finish();
    }
}

/// One write of the read/write serving mix, resolved against the
/// `observers_database` naming scheme (`t{chain}_{i}`, preds `P0..P2`).
/// Every third write is an acyclic chain0 → chain1 order edge; the rest
/// are label-only fact inserts. All edges point the same direction, so
/// the stream never closes a cycle and the in-place patch always
/// applies; the edge keyspace walks all `chain_len²` cross pairs so a
/// long measurement loop keeps issuing *new* edges (genuine incremental
/// maintenance) instead of saturating into deduplicated no-op writes.
fn apply_write(session: &mut Session, voc: &Vocabulary, len: usize, step: usize) {
    let chain_len = len / 2;
    if step.is_multiple_of(3) {
        let k = step / 3;
        let i = k % chain_len;
        let j = (k / chain_len + k) % chain_len;
        let u = voc.find_ord(&format!("t0_{i}")).expect("chain constant");
        let v = voc.find_ord(&format!("t1_{j}")).expect("chain constant");
        session.assert_le(u, v);
    } else {
        let p = voc.find_pred(&format!("P{}", step % 3)).expect("pred");
        let t = voc
            .find_ord(&format!("t{}_{}", step % 2, (step * 7) % chain_len))
            .expect("chain constant");
        session
            .insert_fact(voc, p, vec![Term::Ord(t)])
            .expect("fact");
    }
}

/// Interleaved write/read serving: one mutation + one prepared
/// disjunctive evaluation per iteration, incremental scaffold
/// maintenance vs the historical drop-and-rebuild baseline.
fn bench_read_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("prepared/read-write");
    for len in [256usize, 1024] {
        let (voc, db, queries) = setup(len);
        let eng = Engine::new(&voc);
        let q = &queries[2]; // the disjunctive shape — it drives the scaffold
        let pq = eng.prepare(q).unwrap();
        for (leg, rebuild) in [("incremental", false), ("rebuild", true)] {
            let mut session = Session::new(db.clone()).with_scaffold_rebuild_on_write(rebuild);
            let _ = eng.entails_prepared(&session, &pq).unwrap(); // warm
            let mut step = 0usize;
            g.throughput(Throughput::Elements(db.len() as u64));
            g.bench_with_input(BenchmarkId::new(leg, len), &(), |b, _unit| {
                b.iter(|| {
                    apply_write(&mut session, &voc, len, step);
                    step += 1;
                    eng.entails_prepared(&session, &pq).unwrap()
                })
            });
        }
    }
    g.finish();
}

/// The pair-table growth bound: a `with_max_pairs`-capped session serving
/// the full query mix (evictions + transparent recomputes every
/// acquisition) against the unbounded default.
fn bench_eviction(c: &mut Criterion) {
    let mut g = c.benchmark_group("prepared/eviction");
    for len in [1024usize] {
        let (voc, db, queries) = setup(len);
        let eng = Engine::new(&voc);
        let prepared: Vec<PreparedQuery> =
            queries.iter().map(|q| eng.prepare(q).unwrap()).collect();
        for (leg, cap) in [
            ("unbounded", None),
            ("cap-64", Some(64)),
            ("cap-8", Some(8)),
        ] {
            let mut session = Session::new(db.clone());
            if let Some(cap) = cap {
                session = session.with_max_pairs(cap);
            }
            let _ = eng.entails_batch(&session, &prepared).unwrap(); // warm
            g.bench_with_input(BenchmarkId::new(leg, len), &session, |b, session| {
                b.iter(|| eng.entails_batch(session, &prepared).unwrap())
            });
        }
    }
    g.finish();
}

/// A warm in-process protocol connection serving `db` with
/// [`DISJUNCTIVE_QUERY`] prepared as `disj` — the shared setup of the
/// `prepared/serving` group and the `serving-summary` report.
fn serving_conn(voc: &Vocabulary, db: &Database) -> indord_server::runtime::Conn {
    use indord_server::runtime::{Conn, Registry};
    use std::sync::Arc;
    let registry = Arc::new(Registry::new());
    registry.install("bench", voc.clone(), db.clone());
    let mut conn = Conn::new(registry);
    conn.handle_line("USE bench");
    conn.handle_line(&format!("PREPARE disj: {DISJUNCTIVE_QUERY}"));
    conn.handle_line("ENTAIL disj"); // warm
    conn
}

/// The serving-path overhead: the same prepared disjunctive evaluation
/// through the in-process wire-protocol dispatcher (`Conn::handle_line`
/// — request parse, db read lock, stats counters, latency ring) vs a
/// direct `entails_prepared` call. Target: < 2x.
fn bench_serving(c: &mut Criterion) {
    let mut g = c.benchmark_group("prepared/serving");
    {
        let len = 1024usize;
        let (voc, db, queries) = setup(len);
        let eng = Engine::new(&voc);
        let session = Session::new(db.clone());
        let pq = eng.prepare(&queries[2]).unwrap();
        let _ = eng.entails_prepared(&session, &pq).unwrap(); // warm
        g.bench_with_input(BenchmarkId::new("direct", len), &(), |b, _| {
            b.iter(|| eng.entails_prepared(&session, &pq).unwrap())
        });
        let mut conn = serving_conn(&voc, &db);
        g.bench_with_input(BenchmarkId::new("protocol", len), &(), |b, _| {
            b.iter(|| conn.handle_line("ENTAIL disj"))
        });
    }
    g.finish();
}

fn bench_query_mix_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("prepared/batch");
    for len in [256usize, 1024] {
        let (voc, db, queries) = setup(len);
        let eng = Engine::new(&voc);
        g.bench_with_input(BenchmarkId::new("unprepared-loop", len), &db, |b, db| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|q| eng.entails(db, q).unwrap().holds())
                    .collect::<Vec<_>>()
            })
        });
        let session = Session::new(db.clone());
        let prepared: Vec<PreparedQuery> =
            queries.iter().map(|q| eng.prepare(q).unwrap()).collect();
        g.bench_with_input(BenchmarkId::new("batch", len), &session, |b, session| {
            b.iter(|| eng.entails_batch(session, &prepared).unwrap())
        });
    }
    g.finish();
}

/// Prints the end-to-end speedups on the serving workload (the ≥ 2×
/// acceptance target reads off the per-query lines: repeated evaluation
/// of a fixed query against a fixed database).
fn report_speedup(_c: &mut Criterion) {
    let (voc, db, queries) = setup(1024);
    let eng = Engine::new(&voc);
    let iters = if criterion::is_smoke() { 3 } else { 30 };
    let session = Session::new(db.clone());
    let prepared: Vec<PreparedQuery> = queries.iter().map(|q| eng.prepare(q).unwrap()).collect();
    let _ = eng.entails_batch(&session, &prepared).unwrap(); // warm
    let shapes = ["sequential", "branching", "disjunctive"];
    let mut best = (0.0f64, "");
    for ((q, pq), shape) in queries.iter().zip(&prepared).zip(shapes) {
        let unprep = workloads::time_median(iters, || {
            let _ = eng.entails(&db, q).unwrap();
        });
        let prep = workloads::time_median(iters, || {
            let _ = eng.entails_prepared(&session, pq).unwrap();
        });
        let speedup = unprep.as_secs_f64() / prep.as_secs_f64().max(1e-12);
        if speedup > best.0 {
            best = (speedup, shape);
        }
        println!(
            "prepared/speedup/{shape:<12} unprepared: {unprep:>12?}  prepared: {prep:>12?}  speedup: {speedup:.1}x"
        );
    }
    // The mixed batch: evaluation cost of the heavy disjunctive query
    // dominates both paths, so the amortized gain is smaller.
    let unprepared = workloads::time_median(iters, || {
        for q in &queries {
            let _ = eng.entails(&db, q).unwrap();
        }
    });
    let prepared_t = workloads::time_median(iters, || {
        let _ = eng.entails_batch(&session, &prepared).unwrap();
    });
    let speedup = unprepared.as_secs_f64() / prepared_t.as_secs_f64().max(1e-12);
    println!(
        "prepared/speedup/mix-batch    unprepared: {unprepared:>12?}  prepared: {prepared_t:>12?}  speedup: {speedup:.1}x"
    );
    // The ≥2x acceptance target is for repeated evaluation of a fixed
    // query; the mixed batch above is dominated by the disjunctive
    // query's inherent Thm 5.3 evaluation cost on both paths.
    println!(
        "prepared/speedup-summary      best repeated single-query speedup: {:.1}x ({}) — target >= 2x: {}",
        best.0,
        best.1,
        if best.0 >= 2.0 { "MET" } else { "NOT MET" }
    );

    // The §7 `!=`-heavy workloads at |D| ≈ 1k: scaffold-routed prepared
    // evaluation vs the one-shot §7 path (per-call expansion + scaffold
    // build). Acceptance target: ≥ 10x on the best shape of *each*
    // group — a regression in either the query-`!=` expansion route or
    // the db-`!=` sub-scaffold route must show as NOT MET.
    let mut group_bests: Vec<(&str, f64)> = Vec::new();
    for (group, setup_fn) in [
        (
            "ne-query",
            setup_ne_query as fn(usize) -> (Vocabulary, Database, Vec<DnfQuery>),
        ),
        ("ne-db", setup_ne_db),
    ] {
        let (voc, db, queries) = setup_fn(1024);
        let eng = Engine::new(&voc);
        let session = Session::new(db.clone());
        let prepared: Vec<PreparedQuery> =
            queries.iter().map(|q| eng.prepare(q).unwrap()).collect();
        let _ = eng.entails_batch(&session, &prepared).unwrap(); // warm
        let mut group_best = 0.0f64;
        for (i, (q, pq)) in queries.iter().zip(&prepared).enumerate() {
            let one_shot = workloads::time_median(iters, || {
                let _ = eng.entails(&db, q).unwrap();
            });
            let prep = workloads::time_median(iters, || {
                let _ = eng.entails_prepared(&session, pq).unwrap();
            });
            let speedup = one_shot.as_secs_f64() / prep.as_secs_f64().max(1e-12);
            let shape = format!("{group}/q{i}");
            group_best = group_best.max(speedup);
            println!(
                "prepared/speedup/{shape:<12} one-shot:   {one_shot:>12?}  prepared: {prep:>12?}  speedup: {speedup:.1}x"
            );
        }
        group_bests.push((group, group_best));
    }
    let all_met = group_bests.iter().all(|&(_, s)| s >= 10.0);
    let detail: Vec<String> = group_bests
        .iter()
        .map(|(g, s)| format!("{g} {s:.1}x"))
        .collect();
    println!(
        "prepared/ne-speedup-summary   best per != group: {} — target >= 10x in every group: {}",
        detail.join(", "),
        if all_met { "MET" } else { "NOT MET" }
    );

    // Warm-across-writes: the read/write serving mix (one write + one
    // prepared disjunctive evaluation per iteration) at |D| = 1024,
    // incremental scaffold maintenance vs drop-and-rebuild. Acceptance
    // target: ≥ 20x.
    let (voc, db, queries) = setup(1024);
    let eng = Engine::new(&voc);
    let pq = eng.prepare(&queries[2]).unwrap();
    let rw_iters = if criterion::is_smoke() { 5 } else { 40 };
    let mut leg_times = Vec::new();
    for rebuild in [false, true] {
        let mut session = Session::new(db.clone()).with_scaffold_rebuild_on_write(rebuild);
        let _ = eng.entails_prepared(&session, &pq).unwrap(); // warm
        let mut step = 0usize;
        let t = workloads::time_median(rw_iters, || {
            apply_write(&mut session, &voc, 1024, step);
            step += 1;
            let _ = eng.entails_prepared(&session, &pq).unwrap();
        });
        leg_times.push(t);
        // The session's maintenance counters must tell the story the
        // legs are named after: the incremental leg absorbs (in-place
        // patchable) writes without a single scaffold rebuild, the
        // drop-and-rebuild baseline pays one rebuild per write it
        // patches nothing for.
        let stats = session.stats();
        if rebuild {
            assert!(
                stats.scaffold_rebuilds() > 0,
                "baseline leg must rebuild: {stats:?}"
            );
        } else {
            assert!(
                stats.in_place_patches > 0,
                "incremental leg must patch in place: {stats:?}"
            );
        }
        println!(
            "prepared/rw-maintenance      {} leg: {} in-place patches, {} scaffold rebuilds, {} cache drops, {} pair evictions",
            if rebuild { "rebuild    " } else { "incremental" },
            stats.in_place_patches,
            stats.scaffold_rebuilds(),
            stats.cache_drops,
            stats.pair_evictions,
        );
    }
    let rw_speedup = leg_times[1].as_secs_f64() / leg_times[0].as_secs_f64().max(1e-12);
    println!(
        "prepared/rw-speedup-summary   warm-across-writes: incremental {:>10?}  drop-and-rebuild {:>10?}  speedup: {rw_speedup:.1}x — target >= 20x: {}",
        leg_times[0],
        leg_times[1],
        if rw_speedup >= 20.0 { "MET" } else { "NOT MET" }
    );

    // Serving-path overhead: the prepared disjunctive evaluation through
    // the in-process protocol dispatcher vs the direct call. Acceptance
    // target: < 2x.
    {
        let (voc, db, queries) = setup(1024);
        let eng = Engine::new(&voc);
        let session = Session::new(db.clone());
        let pq = eng.prepare(&queries[2]).unwrap();
        let _ = eng.entails_prepared(&session, &pq).unwrap(); // warm
        let mut conn = serving_conn(&voc, &db);
        let direct = workloads::time_median(iters, || {
            let _ = eng.entails_prepared(&session, &pq).unwrap();
        });
        let served = workloads::time_median(iters, || {
            let _ = conn.handle_line("ENTAIL disj");
        });
        let overhead = served.as_secs_f64() / direct.as_secs_f64().max(1e-12);
        println!(
            "prepared/serving-summary      direct: {direct:>12?}  protocol: {served:>12?}  overhead: {overhead:.2}x — target < 2x: {}",
            if overhead < 2.0 { "MET" } else { "NOT MET" }
        );
    }

    // Shared pair-table contention: hammer one warm session from four
    // threads and report how often a search lost the lock race and fell
    // back to a private table (see DisjunctiveScaffold::pairs).
    let session = Session::new(db.clone());
    let _ = eng.entails_prepared(&session, &pq).unwrap();
    let reads_per_thread = if criterion::is_smoke() { 10 } else { 200 };
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..reads_per_thread {
                    let _ = eng.entails_prepared(&session, &pq).unwrap();
                }
            });
        }
    });
    let scaffold = session.disjunctive_scaffold(&voc).unwrap();
    let total = 4 * reads_per_thread as u64;
    println!(
        "prepared/contention-report    shared pair table: {} private-table fallbacks over {total} concurrent evaluations ({:.1}%)",
        scaffold.contention_fallbacks(),
        100.0 * scaffold.contention_fallbacks() as f64 / total as f64
    );
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_repeated_queries, bench_ne_workloads, bench_read_write, bench_eviction,
        bench_serving, bench_query_mix_batch, report_speedup
}
criterion_main!(benches);
