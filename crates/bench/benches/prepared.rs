//! Prepared vs. unprepared evaluation on repeated-query workloads.
//!
//! The serving pattern the prepare/execute split targets: a fixed set of
//! queries evaluated over and over against one database. The unprepared
//! path re-runs N1/N2 normalization, the monadic-view construction, and
//! full query compilation on every call; the prepared path pays for both
//! once (`Engine::prepare` + a warm `Session`) and then only evaluates.
//!
//! The `ne-*` groups are the §7 `!=`-heavy workloads: queries with `!=`
//! atoms (expanded at prepare time, evaluated on the session scaffold)
//! and databases with `!=` constraints (evaluated through the
//! sub-scaffold projection). Their one-shot leg re-expands and rebuilds
//! a scaffold per call — exactly what the scaffold-routed §7 paths
//! amortize away.
//!
//! The `read-write` group is the mixed serving workload: every iteration
//! performs one write (a label-only fact insert or an acyclic cross-chain
//! order edge) followed by one prepared disjunctive evaluation. The
//! `incremental` leg runs the default session (the scaffold survives the
//! write via incremental closure/topo/pair-table maintenance); the
//! `rebuild` leg pins the pre-incremental behavior
//! (`Session::with_scaffold_rebuild_on_write`) where every write drops
//! the scaffold and the next read pays a full rebuild. The group's
//! recorded figures are *steady state* — criterion's long loop keeps
//! inserting genuinely new edges, so the graph densifies far beyond any
//! single serving window; the `rw-speedup-summary` report line measures
//! the same op stream over a warm serving window instead (that is the
//! ≥ 20x acceptance number). The `eviction` group measures the
//! `Session::with_max_pairs` bound (LRU eviction + transparent
//! recompute) against an unbounded table.
//!
//! The `serving-mvcc` group compares the two server concurrency modes
//! (`ConcurrencyMode::Mvcc` vs the PR 5 `RwLock` ablation) through the
//! wire `Conn`: write latency while a slow reader holds a 25ms view
//! (the countermodel-enumeration stand-in), client read p50/p99 under a
//! sustained write storm, and a multi-writer burst whose STATS delta
//! shows group-commit coalescing.
//!
//! The final groups print the measured speedups explicitly — the
//! acceptance targets are ≥ 2× for the `[<,<=]` serving mix, ≥ 10× for
//! the `!=`-heavy workloads, ≥ 20× for incremental scaffold
//! maintenance vs drop-and-rebuild on the read/write mix, all at
//! |D| ≈ 1k, and for the MVCC group: write latency ≥ 10× better than
//! the lock under a long read, no read-p99 regression under the storm,
//! and ≥ 2 fragments per group commit on the burst.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use indord_bench::workloads;
use indord_core::atom::Term;
use indord_core::database::Database;
use indord_core::parse::parse_query;
use indord_core::query::DnfQuery;
use indord_core::session::Session;
use indord_core::sym::Vocabulary;
use indord_entail::{Engine, PreparedQuery};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(100))
}

/// The disjunctive shape of the serving mix — also the workload of the
/// `prepared/serving` protocol-overhead measurements (index 2 of
/// [`query_mix`]).
const DISJUNCTIVE_QUERY: &str = "(exists s. P0(s) & P1(s)) | exists s t. P0(s) & s < t & P2(t)";

/// The query mix of a plausible monitoring service: sequential,
/// branching, and disjunctive shapes over three monadic predicates.
fn query_mix(voc: &mut Vocabulary) -> Vec<DnfQuery> {
    [
        "exists a b c. P0(a) & a < b & P1(b) & b <= c & P2(c)",
        "exists a b c. P0(a) & a < b & P1(b) & a < c & P2(c)",
        DISJUNCTIVE_QUERY,
    ]
    .iter()
    .map(|t| parse_query(voc, t).expect("well-formed query"))
    .collect()
}

fn setup(len: usize) -> (Vocabulary, Database, Vec<DnfQuery>) {
    let mut voc = Vocabulary::new();
    let mut rng = workloads::rng(0x5EED + len as u64);
    let db = workloads::observers_database(&mut voc, &mut rng, 2, len / 2, 3, 0.2);
    let queries = query_mix(&mut voc);
    (voc, db, queries)
}

/// The §7 query mix: `!=` atoms in sequential, chained, and disjunctive
/// positions — each expands into 2–3 `[<,<=]` disjuncts at prepare time.
fn ne_query_mix(voc: &mut Vocabulary) -> Vec<DnfQuery> {
    [
        "exists s t. P0(s) & P1(t) & s != t",
        "exists s t u. P0(s) & s != t & P1(t) & t <= u & P2(u)",
        "(exists s t. P0(s) & P2(t) & s != t) | exists s. P0(s) & P1(s) & P2(s)",
    ]
    .iter()
    .map(|t| parse_query(voc, t).expect("well-formed != query"))
    .collect()
}

/// A `[<,<=]` database with `!=`-heavy queries (the query-`!=` route).
fn setup_ne_query(len: usize) -> (Vocabulary, Database, Vec<DnfQuery>) {
    let mut voc = Vocabulary::new();
    let mut rng = workloads::rng(0x7EED + len as u64);
    let db = workloads::observers_database(&mut voc, &mut rng, 2, len / 2, 3, 0.2);
    let queries = ne_query_mix(&mut voc);
    (voc, db, queries)
}

/// A database carrying `!=` constraints (the sub-scaffold route): every
/// monadic query — with or without its own `!=` atoms — evaluates
/// through the restricted Theorem 5.3 search.
fn setup_ne_db(len: usize) -> (Vocabulary, Database, Vec<DnfQuery>) {
    let mut voc = Vocabulary::new();
    let mut rng = workloads::rng(0x8EED + len as u64);
    let mut db = workloads::observers_database(&mut voc, &mut rng, 2, len / 2, 3, 0.2);
    workloads::add_ne_pairs(&mut voc, &mut db, &mut rng, 2, len / 2, 8);
    let mut queries = ne_query_mix(&mut voc);
    queries.push(
        parse_query(
            &mut voc,
            "(exists s. P0(s) & P1(s)) | exists s t. P0(s) & s < t & P2(t)",
        )
        .expect("well-formed disjunction"),
    );
    (voc, db, queries)
}

fn bench_repeated_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("prepared/repeat");
    for len in [64usize, 256, 1024] {
        let (voc, db, queries) = setup(len);
        let eng = Engine::new(&voc);
        let q = &queries[0];
        g.throughput(Throughput::Elements(db.len() as u64));
        g.bench_with_input(BenchmarkId::new("unprepared", len), &db, |b, db| {
            b.iter(|| eng.entails(db, q).unwrap())
        });
        let session = Session::new(db.clone());
        let pq = eng.prepare(q).unwrap();
        g.bench_with_input(BenchmarkId::new("prepared", len), &session, |b, session| {
            b.iter(|| eng.entails_prepared(session, &pq).unwrap())
        });
    }
    g.finish();
}

/// The §7 `!=`-heavy repeated-query workloads: `ne-query` exercises
/// query-side `!=` expansion on a `[<,<=]` database, `ne-db` the
/// sub-scaffold-restricted search on a `!=` database. The unprepared leg
/// is the one-shot §7 path (re-expansion + fresh scaffold per call).
fn bench_ne_workloads(c: &mut Criterion) {
    for (group, setup_fn) in [
        (
            "prepared/ne-query",
            setup_ne_query as fn(usize) -> (Vocabulary, Database, Vec<DnfQuery>),
        ),
        ("prepared/ne-db", setup_ne_db),
    ] {
        let mut g = c.benchmark_group(group);
        for len in [256usize, 1024] {
            let (voc, db, queries) = setup_fn(len);
            let eng = Engine::new(&voc);
            let q = &queries[0];
            g.throughput(Throughput::Elements(db.len() as u64));
            g.bench_with_input(BenchmarkId::new("one-shot", len), &db, |b, db| {
                b.iter(|| eng.entails(db, q).unwrap())
            });
            let session = Session::new(db.clone());
            let pq = eng.prepare(q).unwrap();
            g.bench_with_input(BenchmarkId::new("prepared", len), &session, |b, session| {
                b.iter(|| eng.entails_prepared(session, &pq).unwrap())
            });
            // The whole != mix as a prepared batch on one warm session.
            let prepared: Vec<PreparedQuery> =
                queries.iter().map(|q| eng.prepare(q).unwrap()).collect();
            g.bench_with_input(BenchmarkId::new("batch", len), &session, |b, session| {
                b.iter(|| eng.entails_batch(session, &prepared).unwrap())
            });
        }
        g.finish();
    }
}

/// One write of the read/write serving mix, resolved against the
/// `observers_database` naming scheme (`t{chain}_{i}`, preds `P0..P2`).
/// Every third write is an acyclic chain0 → chain1 order edge; the rest
/// are label-only fact inserts. All edges point the same direction, so
/// the stream never closes a cycle and the in-place patch always
/// applies; the edge keyspace walks all `chain_len²` cross pairs so a
/// long measurement loop keeps issuing *new* edges (genuine incremental
/// maintenance) instead of saturating into deduplicated no-op writes.
fn apply_write(session: &mut Session, voc: &Vocabulary, len: usize, step: usize) {
    let chain_len = len / 2;
    if step.is_multiple_of(3) {
        let k = step / 3;
        let i = k % chain_len;
        let j = (k / chain_len + k) % chain_len;
        let u = voc.find_ord(&format!("t0_{i}")).expect("chain constant");
        let v = voc.find_ord(&format!("t1_{j}")).expect("chain constant");
        session.assert_le(u, v);
    } else {
        let p = voc.find_pred(&format!("P{}", step % 3)).expect("pred");
        let t = voc
            .find_ord(&format!("t{}_{}", step % 2, (step * 7) % chain_len))
            .expect("chain constant");
        session
            .insert_fact(voc, p, vec![Term::Ord(t)])
            .expect("fact");
    }
}

/// Interleaved write/read serving: one mutation + one prepared
/// disjunctive evaluation per iteration, incremental scaffold
/// maintenance vs the historical drop-and-rebuild baseline.
fn bench_read_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("prepared/read-write");
    for len in [256usize, 1024] {
        let (voc, db, queries) = setup(len);
        let eng = Engine::new(&voc);
        let q = &queries[2]; // the disjunctive shape — it drives the scaffold
        let pq = eng.prepare(q).unwrap();
        for (leg, rebuild) in [("incremental", false), ("rebuild", true)] {
            let mut session = Session::new(db.clone()).with_scaffold_rebuild_on_write(rebuild);
            let _ = eng.entails_prepared(&session, &pq).unwrap(); // warm
            let mut step = 0usize;
            g.throughput(Throughput::Elements(db.len() as u64));
            g.bench_with_input(BenchmarkId::new(leg, len), &(), |b, _unit| {
                b.iter(|| {
                    apply_write(&mut session, &voc, len, step);
                    step += 1;
                    eng.entails_prepared(&session, &pq).unwrap()
                })
            });
        }
    }
    g.finish();
}

/// The pair-table growth bound: a `with_max_pairs`-capped session serving
/// the full query mix (evictions + transparent recomputes every
/// acquisition) against the unbounded default.
fn bench_eviction(c: &mut Criterion) {
    let mut g = c.benchmark_group("prepared/eviction");
    for len in [1024usize] {
        let (voc, db, queries) = setup(len);
        let eng = Engine::new(&voc);
        let prepared: Vec<PreparedQuery> =
            queries.iter().map(|q| eng.prepare(q).unwrap()).collect();
        for (leg, cap) in [
            ("unbounded", None),
            ("cap-64", Some(64)),
            ("cap-8", Some(8)),
        ] {
            let mut session = Session::new(db.clone());
            if let Some(cap) = cap {
                session = session.with_max_pairs(cap);
            }
            let _ = eng.entails_batch(&session, &prepared).unwrap(); // warm
            g.bench_with_input(BenchmarkId::new(leg, len), &session, |b, session| {
                b.iter(|| eng.entails_batch(session, &prepared).unwrap())
            });
        }
    }
    g.finish();
}

/// A warm in-process protocol connection serving `db` with
/// [`DISJUNCTIVE_QUERY`] prepared as `disj` — the shared setup of the
/// `prepared/serving` group and the `serving-summary` report.
fn serving_conn(voc: &Vocabulary, db: &Database) -> indord_server::runtime::Conn {
    use indord_server::runtime::{Conn, Registry};
    use std::sync::Arc;
    let registry = Arc::new(Registry::new());
    registry.install("bench", voc.clone(), db.clone());
    let mut conn = Conn::new(registry);
    conn.handle_line("USE bench");
    conn.handle_line(&format!("PREPARE disj: {DISJUNCTIVE_QUERY}"));
    conn.handle_line("ENTAIL disj"); // warm
    conn
}

/// The serving-path overhead: the same prepared disjunctive evaluation
/// through the in-process wire-protocol dispatcher (`Conn::handle_line`
/// — request parse, db read lock, stats counters, latency ring) vs a
/// direct `entails_prepared` call. Target: < 2x.
fn bench_serving(c: &mut Criterion) {
    let mut g = c.benchmark_group("prepared/serving");
    {
        let len = 1024usize;
        let (voc, db, queries) = setup(len);
        let eng = Engine::new(&voc);
        let session = Session::new(db.clone());
        let pq = eng.prepare(&queries[2]).unwrap();
        let _ = eng.entails_prepared(&session, &pq).unwrap(); // warm
        g.bench_with_input(BenchmarkId::new("direct", len), &(), |b, _| {
            b.iter(|| eng.entails_prepared(&session, &pq).unwrap())
        });
        let mut conn = serving_conn(&voc, &db);
        g.bench_with_input(BenchmarkId::new("protocol", len), &(), |b, _| {
            b.iter(|| conn.handle_line("ENTAIL disj"))
        });
    }
    g.finish();
}

/// A warm protocol connection over a registry pinned to the given
/// concurrency mode (epoch-MVCC default vs the `RwLock` ablation
/// baseline kept for exactly these measurements).
fn serving_conn_mode(
    mode: indord_server::runtime::ConcurrencyMode,
    voc: &Vocabulary,
    db: &Database,
) -> (
    std::sync::Arc<indord_server::runtime::Registry>,
    indord_server::runtime::Conn,
) {
    use indord_server::runtime::{Conn, Registry};
    use std::sync::Arc;
    let registry = Arc::new(Registry::with_mode(mode));
    registry.install("bench", voc.clone(), db.clone());
    let mut conn = Conn::new(Arc::clone(&registry));
    conn.handle_line("USE bench");
    conn.handle_line(&format!("PREPARE disj: {DISJUNCTIVE_QUERY}"));
    conn.handle_line("ENTAIL disj"); // warm
    (registry, conn)
}

fn bench_query_mix_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("prepared/batch");
    for len in [256usize, 1024] {
        let (voc, db, queries) = setup(len);
        let eng = Engine::new(&voc);
        g.bench_with_input(BenchmarkId::new("unprepared-loop", len), &db, |b, db| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|q| eng.entails(db, q).unwrap().holds())
                    .collect::<Vec<_>>()
            })
        });
        let session = Session::new(db.clone());
        let prepared: Vec<PreparedQuery> =
            queries.iter().map(|q| eng.prepare(q).unwrap()).collect();
        g.bench_with_input(BenchmarkId::new("batch", len), &session, |b, session| {
            b.iter(|| eng.entails_batch(session, &prepared).unwrap())
        });
    }
    g.finish();
}

/// Prints the end-to-end speedups on the serving workload (the ≥ 2×
/// acceptance target reads off the per-query lines: repeated evaluation
/// of a fixed query against a fixed database).
fn report_speedup(_c: &mut Criterion) {
    let (voc, db, queries) = setup(1024);
    let eng = Engine::new(&voc);
    let iters = if criterion::is_smoke() { 3 } else { 30 };
    let session = Session::new(db.clone());
    let prepared: Vec<PreparedQuery> = queries.iter().map(|q| eng.prepare(q).unwrap()).collect();
    let _ = eng.entails_batch(&session, &prepared).unwrap(); // warm
    let shapes = ["sequential", "branching", "disjunctive"];
    let mut best = (0.0f64, "");
    for ((q, pq), shape) in queries.iter().zip(&prepared).zip(shapes) {
        let unprep = workloads::time_median(iters, || {
            let _ = eng.entails(&db, q).unwrap();
        });
        let prep = workloads::time_median(iters, || {
            let _ = eng.entails_prepared(&session, pq).unwrap();
        });
        let speedup = unprep.as_secs_f64() / prep.as_secs_f64().max(1e-12);
        if speedup > best.0 {
            best = (speedup, shape);
        }
        println!(
            "prepared/speedup/{shape:<12} unprepared: {unprep:>12?}  prepared: {prep:>12?}  speedup: {speedup:.1}x"
        );
    }
    // The mixed batch: evaluation cost of the heavy disjunctive query
    // dominates both paths, so the amortized gain is smaller.
    let unprepared = workloads::time_median(iters, || {
        for q in &queries {
            let _ = eng.entails(&db, q).unwrap();
        }
    });
    let prepared_t = workloads::time_median(iters, || {
        let _ = eng.entails_batch(&session, &prepared).unwrap();
    });
    let speedup = unprepared.as_secs_f64() / prepared_t.as_secs_f64().max(1e-12);
    println!(
        "prepared/speedup/mix-batch    unprepared: {unprepared:>12?}  prepared: {prepared_t:>12?}  speedup: {speedup:.1}x"
    );
    // The ≥2x acceptance target is for repeated evaluation of a fixed
    // query; the mixed batch above is dominated by the disjunctive
    // query's inherent Thm 5.3 evaluation cost on both paths.
    println!(
        "prepared/speedup-summary      best repeated single-query speedup: {:.1}x ({}) — target >= 2x: {}",
        best.0,
        best.1,
        if best.0 >= 2.0 { "MET" } else { "NOT MET" }
    );

    // The §7 `!=`-heavy workloads at |D| ≈ 1k: scaffold-routed prepared
    // evaluation vs the one-shot §7 path (per-call expansion + scaffold
    // build). Acceptance target: ≥ 10x on the best shape of *each*
    // group — a regression in either the query-`!=` expansion route or
    // the db-`!=` sub-scaffold route must show as NOT MET.
    let mut group_bests: Vec<(&str, f64)> = Vec::new();
    for (group, setup_fn) in [
        (
            "ne-query",
            setup_ne_query as fn(usize) -> (Vocabulary, Database, Vec<DnfQuery>),
        ),
        ("ne-db", setup_ne_db),
    ] {
        let (voc, db, queries) = setup_fn(1024);
        let eng = Engine::new(&voc);
        let session = Session::new(db.clone());
        let prepared: Vec<PreparedQuery> =
            queries.iter().map(|q| eng.prepare(q).unwrap()).collect();
        let _ = eng.entails_batch(&session, &prepared).unwrap(); // warm
        let mut group_best = 0.0f64;
        for (i, (q, pq)) in queries.iter().zip(&prepared).enumerate() {
            let one_shot = workloads::time_median(iters, || {
                let _ = eng.entails(&db, q).unwrap();
            });
            let prep = workloads::time_median(iters, || {
                let _ = eng.entails_prepared(&session, pq).unwrap();
            });
            let speedup = one_shot.as_secs_f64() / prep.as_secs_f64().max(1e-12);
            let shape = format!("{group}/q{i}");
            group_best = group_best.max(speedup);
            println!(
                "prepared/speedup/{shape:<12} one-shot:   {one_shot:>12?}  prepared: {prep:>12?}  speedup: {speedup:.1}x"
            );
        }
        group_bests.push((group, group_best));
    }
    let all_met = group_bests.iter().all(|&(_, s)| s >= 10.0);
    let detail: Vec<String> = group_bests
        .iter()
        .map(|(g, s)| format!("{g} {s:.1}x"))
        .collect();
    println!(
        "prepared/ne-speedup-summary   best per != group: {} — target >= 10x in every group: {}",
        detail.join(", "),
        if all_met { "MET" } else { "NOT MET" }
    );

    // Warm-across-writes: the read/write serving mix (one write + one
    // prepared disjunctive evaluation per iteration) at |D| = 1024,
    // incremental scaffold maintenance vs drop-and-rebuild. Acceptance
    // target: ≥ 20x.
    let (voc, db, queries) = setup(1024);
    let eng = Engine::new(&voc);
    let pq = eng.prepare(&queries[2]).unwrap();
    let rw_iters = if criterion::is_smoke() { 5 } else { 40 };
    let mut leg_times = Vec::new();
    for rebuild in [false, true] {
        let mut session = Session::new(db.clone()).with_scaffold_rebuild_on_write(rebuild);
        let _ = eng.entails_prepared(&session, &pq).unwrap(); // warm
        let mut step = 0usize;
        let t = workloads::time_median(rw_iters, || {
            apply_write(&mut session, &voc, 1024, step);
            step += 1;
            let _ = eng.entails_prepared(&session, &pq).unwrap();
        });
        leg_times.push(t);
        // The session's maintenance counters must tell the story the
        // legs are named after: the incremental leg absorbs (in-place
        // patchable) writes without a single scaffold rebuild, the
        // drop-and-rebuild baseline pays one rebuild per write it
        // patches nothing for.
        let stats = session.stats();
        if rebuild {
            assert!(
                stats.scaffold_rebuilds() > 0,
                "baseline leg must rebuild: {stats:?}"
            );
        } else {
            assert!(
                stats.in_place_patches > 0,
                "incremental leg must patch in place: {stats:?}"
            );
        }
        println!(
            "prepared/rw-maintenance      {} leg: {} in-place patches, {} scaffold rebuilds, {} cache drops, {} pair evictions",
            if rebuild { "rebuild    " } else { "incremental" },
            stats.in_place_patches,
            stats.scaffold_rebuilds(),
            stats.cache_drops,
            stats.pair_evictions,
        );
    }
    let rw_speedup = leg_times[1].as_secs_f64() / leg_times[0].as_secs_f64().max(1e-12);
    println!(
        "prepared/rw-speedup-summary   warm-across-writes: incremental {:>10?}  drop-and-rebuild {:>10?}  speedup: {rw_speedup:.1}x — target >= 20x: {}",
        leg_times[0],
        leg_times[1],
        if rw_speedup >= 20.0 { "MET" } else { "NOT MET" }
    );

    // Serving-path overhead: the prepared disjunctive evaluation through
    // the in-process protocol dispatcher vs the direct call. Acceptance
    // target: < 2x.
    {
        let (voc, db, queries) = setup(1024);
        let eng = Engine::new(&voc);
        let session = Session::new(db.clone());
        let pq = eng.prepare(&queries[2]).unwrap();
        let _ = eng.entails_prepared(&session, &pq).unwrap(); // warm
        let mut conn = serving_conn(&voc, &db);
        let direct = workloads::time_median(iters, || {
            let _ = eng.entails_prepared(&session, &pq).unwrap();
        });
        let served = workloads::time_median(iters, || {
            let _ = conn.handle_line("ENTAIL disj");
        });
        let overhead = served.as_secs_f64() / direct.as_secs_f64().max(1e-12);
        println!(
            "prepared/serving-summary      direct: {direct:>12?}  protocol: {served:>12?}  overhead: {overhead:.2}x — target < 2x: {}",
            if overhead < 2.0 { "MET" } else { "NOT MET" }
        );
    }

    // Shared pair-table contention: hammer one warm session from four
    // threads and report how often a search lost the lock race and fell
    // back to a private table (see DisjunctiveScaffold::pairs).
    let session = Session::new(db.clone());
    let _ = eng.entails_prepared(&session, &pq).unwrap();
    let reads_per_thread = if criterion::is_smoke() { 10 } else { 200 };
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..reads_per_thread {
                    let _ = eng.entails_prepared(&session, &pq).unwrap();
                }
            });
        }
    });
    let scaffold = session.disjunctive_scaffold(&voc).unwrap();
    let total = 4 * reads_per_thread as u64;
    println!(
        "prepared/contention-report    shared pair table: {} private-table fallbacks over {total} concurrent evaluations ({:.1}%)",
        scaffold.contention_fallbacks(),
        100.0 * scaffold.contention_fallbacks() as f64 / total as f64
    );
}

/// Prints and records the MVCC-vs-RwLock serving evidence (the ISSUE 6
/// acceptance numbers): write latency with a long read in flight
/// (≥ 10x), client-side read p50/p99 under a write storm (no
/// regression vs the PR 5 lock), burst write throughput per mode, and
/// group-commit coalescing (≥ 2 fragments/commit on the burst).
fn report_mvcc(_c: &mut Criterion) {
    use indord_server::protocol::Response;
    use indord_server::runtime::{ConcurrencyMode, Conn};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;
    const MODES: [(&str, ConcurrencyMode); 2] = [
        ("mvcc", ConcurrencyMode::Mvcc),
        ("rwlock", ConcurrencyMode::RwLock),
    ];
    let stats_of = |conn: &mut Conn| match conn.handle_line("STATS") {
        Response::Stats(s) => *s,
        other => panic!("STATS: unexpected {other:?}"),
    };
    let (voc, db, _queries) = setup(1024);

    // 1. Write latency with a 25ms-held read view in flight (the slow
    //    Thm 5.3 countermodel-enumeration stand-in). Writes arrive 5ms
    //    apart like a real client, so each lands mid-hold instead of a
    //    serial burst squeezing through the holder's re-acquire gap —
    //    without the spacing the lock leg measures the gap, not the
    //    hold. The mean is the honest statistic: under the lock a write
    //    either waits out the hold or slips through, so the median flips
    //    between regimes while the mean is dominated by the blocking
    //    under test.
    let writes = if criterion::is_smoke() { 8 } else { 40 };
    let mut write_means = Vec::new();
    for (leg, mode) in MODES {
        let (registry, mut conn) = serving_conn_mode(mode, &voc, &db);
        let stop = Arc::new(AtomicBool::new(false));
        let holder = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let db = registry.get("bench").expect("installed");
                while !stop.load(Ordering::Relaxed) {
                    let view = db.view();
                    std::thread::sleep(Duration::from_millis(25));
                    drop(view);
                    std::thread::yield_now();
                }
            })
        };
        std::thread::sleep(Duration::from_millis(5)); // holder is in place
        let mut samples = Vec::with_capacity(writes);
        for step in 0..writes {
            std::thread::sleep(Duration::from_millis(5)); // client pacing
            let line = format!("FACT P{}(t1_{});", step % 3, step % 512);
            let t0 = Instant::now();
            let r = conn.handle_line(&line);
            samples.push(t0.elapsed());
            assert!(matches!(r, Response::Ok(_)), "write failed: {r:?}");
        }
        stop.store(true, Ordering::Relaxed);
        holder.join().expect("holder thread");
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        criterion::record(
            &format!("prepared/serving-mvcc/write-mean-under-long-read/{leg}"),
            mean.as_nanos() as f64,
        );
        write_means.push(mean);
    }
    let write_speedup = write_means[1].as_secs_f64() / write_means[0].as_secs_f64().max(1e-12);
    println!(
        "prepared/mvcc-write-summary   write mean under 25ms-held read: mvcc {:>10?}  rwlock {:>10?}  speedup: {write_speedup:.1}x — target >= 10x: {}",
        write_means[0],
        write_means[1],
        if write_speedup >= 10.0 { "MET" } else { "NOT MET" }
    );

    // 2. Client-side read p50/p99 under a steady background write load
    //    (one writer, a label fact on known constants every 5ms). The
    //    claim under test is that writes never *block* reads — the lock
    //    pathology. The pacing keeps commits below the p99 sample tail
    //    on a single-core box, where a saturating writer would measure
    //    the scheduler's timeslicing (every thread starves every other
    //    thread at 100% CPU) rather than the locking discipline.
    let window = Duration::from_millis(if criterion::is_smoke() { 50 } else { 250 });
    let mut p99s = Vec::new();
    for (leg, mode) in MODES {
        let (registry, mut conn) = serving_conn_mode(mode, &voc, &db);
        let stop = Arc::new(AtomicBool::new(false));
        let storm = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Conn::new(registry);
                c.handle_line("USE bench");
                let mut step = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    step += 1;
                    c.handle_line(&format!("FACT P{}(t0_{});", step % 3, (step * 7) % 512));
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let started = Instant::now();
        let mut reads: Vec<f64> = Vec::with_capacity(1 << 16);
        while started.elapsed() < window {
            let t0 = Instant::now();
            let _ = criterion::black_box(conn.handle_line("ENTAIL disj"));
            reads.push(t0.elapsed().as_nanos() as f64);
        }
        stop.store(true, Ordering::Relaxed);
        storm.join().expect("storm thread");
        reads.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p50 = reads[reads.len() / 2];
        let p99 = reads[(reads.len() * 99 / 100).min(reads.len() - 1)];
        criterion::record(
            &format!("prepared/serving-mvcc/read-p50-under-storm/{leg}"),
            p50,
        );
        criterion::record(
            &format!("prepared/serving-mvcc/read-p99-under-storm/{leg}"),
            p99,
        );
        println!(
            "prepared/mvcc-read-storm      {leg:<6} read p50: {:>9.0} ns  p99: {:>9.0} ns  ({} reads under storm)",
            p50,
            p99,
            reads.len()
        );
        p99s.push(p99);
    }
    println!(
        "prepared/mvcc-read-summary    read p99 under write storm: mvcc {:.0} ns vs rwlock (PR 5 baseline) {:.0} ns — no regression (<= 1.5x): {}",
        p99s[0],
        p99s[1],
        if p99s[0] <= p99s[1] * 1.5 { "MET" } else { "NOT MET" }
    );

    // 3. Burst throughput per mode + group-commit coalescing. Six
    //    concurrent connections each push a run of label facts; the
    //    mutator drains whatever queued, so fragments/commit > 1 is the
    //    group-commit claim (exact sizes are scheduling-dependent).
    const BURST_WRITERS: usize = 6;
    let per_writer = if criterion::is_smoke() { 10 } else { 40 };
    for (leg, mode) in MODES {
        let (registry, mut conn) = serving_conn_mode(mode, &voc, &db);
        let before = stats_of(&mut conn);
        let landed = Arc::new(AtomicU64::new(0));
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for w in 0..BURST_WRITERS {
                let registry = Arc::clone(&registry);
                let landed = Arc::clone(&landed);
                scope.spawn(move || {
                    let mut c = Conn::new(registry);
                    c.handle_line("USE bench");
                    for k in 0..per_writer {
                        let r = c.handle_line(&format!(
                            "FACT P{}(t1_{});",
                            (w + k) % 3,
                            (w * per_writer + k) % 512
                        ));
                        assert!(matches!(r, Response::Ok(_)), "burst write failed: {r:?}");
                        landed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let wall = t0.elapsed();
        let after = stats_of(&mut conn);
        let wps = landed.load(Ordering::Relaxed) as f64 / wall.as_secs_f64().max(1e-12);
        criterion::record(
            &format!("prepared/serving-mvcc/burst-writes-per-sec/{leg}"),
            wps,
        );
        println!(
            "prepared/mvcc-burst           {leg:<6} {} writes from {BURST_WRITERS} connections in {wall:?} ({wps:.0} writes/s)",
            landed.load(Ordering::Relaxed)
        );
        if mode == ConcurrencyMode::Mvcc {
            let commits = (after.group_commits - before.group_commits).max(1);
            let fragments = after.group_fragments - before.group_fragments;
            let avg = fragments as f64 / commits as f64;
            criterion::record("prepared/serving-mvcc/burst-fragments-per-commit", avg);
            criterion::record(
                "prepared/serving-mvcc/burst-max-group",
                after.max_group as f64,
            );
            println!(
                "prepared/mvcc-coalescing      burst: {fragments} fragments over {commits} group commits = {avg:.1} avg (max group {}) — target >= 2 fragments/commit: {}",
                after.max_group,
                if avg >= 2.0 { "MET" } else { "NOT MET" }
            );
        }
    }
}

/// The durability overhead (ISSUE 7 acceptance): write mean through the
/// wire `Conn` on the in-memory MVCC registry vs a durable registry
/// under each fsync policy, same workload, same database. One
/// sequential writer — on the single-core bench box concurrent writers
/// would measure the scheduler, not the WAL — and every write is its
/// own group commit, so the `group` leg pays the worst-case one fsync
/// per write. Target: `fsync=group` write mean ≤ 1ms absolute (the
/// fsync is hardware-fixed; a ratio against the now-cheap in-memory
/// publish would measure the baseline, not the WAL).
fn report_durable(_c: &mut Criterion) {
    use indord_server::durable::StorageConfig;
    use indord_server::protocol::Response;
    use indord_server::runtime::{Conn, Registry};
    use indord_storage::FsyncPolicy;
    use std::sync::Arc;
    use std::time::Instant;

    let (voc, db, _queries) = setup(1024);
    let writes = if criterion::is_smoke() { 8 } else { 200 };
    let legs: [(&str, Option<FsyncPolicy>); 4] = [
        ("in-memory", None),
        ("group", Some(FsyncPolicy::Group)),
        ("always", Some(FsyncPolicy::Always)),
        ("os", Some(FsyncPolicy::Os)),
    ];
    let mut means = Vec::new();
    for (leg, fsync) in legs {
        let root = fsync.map(|policy| {
            let root = std::env::temp_dir()
                .join(format!("indord-bench-durable-{}-{leg}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            std::fs::create_dir_all(&root).expect("bench data dir");
            (root, policy)
        });
        let registry = match &root {
            None => Arc::new(Registry::new()),
            Some((root, policy)) => {
                let cfg = StorageConfig {
                    root: root.clone(),
                    fsync: *policy,
                    snapshot_every: 1_000_000, // never: measure the log, not snapshots
                };
                Arc::new(Registry::with_storage(cfg).expect("durable registry"))
            }
        };
        registry.install("bench", voc.clone(), db.clone());
        let mut conn = Conn::new(Arc::clone(&registry));
        conn.handle_line("USE bench");
        conn.handle_line("FACT P0(t0_0);"); // warm the write path
        let mut total = Duration::ZERO;
        for step in 0..writes {
            let line = format!("FACT P{}(t0_{});", step % 3, (step * 7) % 512);
            let t0 = Instant::now();
            let r = conn.handle_line(&line);
            total += t0.elapsed();
            assert!(matches!(r, Response::Ok(_)), "bench write failed: {r:?}");
        }
        let mean = total / writes as u32;
        criterion::record(
            &format!("prepared/serving-durable/write-mean/{leg}"),
            mean.as_nanos() as f64,
        );
        if matches!(fsync, Some(FsyncPolicy::Group)) {
            let stats = match conn.handle_line("STATS") {
                Response::Stats(s) => *s,
                other => panic!("STATS: unexpected {other:?}"),
            };
            println!(
                "prepared/durable-group        {} wal appends, {} bytes, {} fsyncs over {} acked writes",
                stats.wal_appends,
                stats.wal_bytes,
                stats.fsyncs,
                writes + 1
            );
        }
        registry.shutdown_dbs();
        drop(conn);
        drop(registry);
        if let Some((root, _)) = root {
            let _ = std::fs::remove_dir_all(&root);
        }
        means.push((leg, mean));
    }
    let base = means[0].1.as_secs_f64().max(1e-12);
    for &(leg, mean) in &means[1..] {
        println!(
            "prepared/durable-overhead     fsync={leg:<6} write mean: {mean:>10?} vs in-memory {:>10?} = {:.2}x",
            means[0].1,
            mean.as_secs_f64() / base
        );
    }
    // The durability tax is one fsync (hardware-fixed, ~100-300µs on
    // commodity disks), so with the copy-on-write commit path making
    // in-memory publishes cheap, a *ratio* against in-memory would
    // only measure how fast the baseline got. The target is absolute:
    // an acked durable write stays under 1ms end to end.
    let group_mean = means[1].1;
    println!(
        "prepared/durable-summary      group-fsync write mean {group_mean:?} (in-memory {:?}; the gap is the per-group fsync) — target <= 1ms: {}",
        means[0].1,
        if group_mean <= Duration::from_millis(1) {
            "MET"
        } else {
            "NOT MET"
        }
    );
}

/// The overload-protection leg: sequential write mean under each
/// commit-queue cap (the admission check must stay out of the
/// uncontended path's way) and the shed rate of a saturating burst
/// enqueued against a stalled mutator (everything past the cap must be
/// rejected with the typed retryable error, not queued without bound).
/// Sequential on purpose: the CI container is single-core, so a
/// threaded storm would measure the scheduler, not admission.
fn report_overload(_c: &mut Criterion) {
    use indord_server::protocol::{ErrorKind, Response};
    use indord_server::runtime::{Conn, Registry};
    use std::sync::Arc;
    use std::time::Instant;

    let (voc, db, _queries) = setup(1024);
    let writes = if criterion::is_smoke() { 8 } else { 200 };
    let burst = if criterion::is_smoke() { 64 } else { 512 };
    for cap in [8usize, 64, 256] {
        let registry = Arc::new(Registry::new().with_max_queue(cap));
        registry.install("bench", voc.clone(), db.clone());
        let mut conn = Conn::new(Arc::clone(&registry));
        conn.handle_line("USE bench");
        conn.handle_line("FACT P0(t0_0);"); // warm the write path
        let mut total = Duration::ZERO;
        for step in 0..writes {
            let line = format!("FACT P{}(t0_{});", step % 3, (step * 7) % 512);
            let t0 = Instant::now();
            let r = conn.handle_line(&line);
            total += t0.elapsed();
            assert!(matches!(r, Response::Ok(_)), "bench write failed: {r:?}");
        }
        let mean = total / writes as u32;
        criterion::record(
            &format!("prepared/serving-overload/write-mean/cap{cap}"),
            mean.as_nanos() as f64,
        );

        // The saturating burst: stall the mutator, enqueue without
        // waiting, count the typed rejections. With the mutator parked
        // the admitted count is exactly the cap, so the recorded rate
        // tracks the admission contract, not scheduler noise.
        let db_handle = registry.get("bench").unwrap();
        let stall = db_handle.stall_mutator(Duration::from_millis(100)).unwrap();
        while db_handle.stats().commit_queue_depth() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut receivers = Vec::new();
        let mut shed = 0u64;
        for i in 0..burst {
            let frag = format!("P{}(t0_{});", i % 3, (i * 11) % 512);
            match db_handle.enqueue_fragment(&frag) {
                Ok(rx) => receivers.push(rx),
                Err(e) => {
                    assert_eq!(e.kind, ErrorKind::Overloaded, "burst rejection: {e:?}");
                    shed += 1;
                }
            }
        }
        let _ = stall.recv();
        for rx in receivers {
            let _ = rx.recv();
        }
        let rate = shed as f64 / burst as f64;
        criterion::record(
            &format!("prepared/serving-overload/shed-rate/cap{cap}"),
            rate,
        );
        println!(
            "prepared/serving-overload     cap={cap:<4} write mean {mean:>10?}  burst {burst}: shed {shed} ({:.0}%)",
            rate * 100.0
        );
        registry.shutdown_dbs();
        drop(conn);
        drop(registry);
    }
}

/// The tracing-overhead leg: the same prepared serving workload through
/// the wire `Conn` with the recorder disabled (the default) vs enabled
/// on every request (`--slow-ms` with an unreachable threshold, so the
/// slow log never fires and the delta is the recorder itself — clock
/// reads per phase on reads, plus the phase-slot round trip through the
/// mutator on writes). Sequential legs on purpose: the CI box is
/// single-core, so concurrency here would measure the scheduler.
/// Target: ≤ 5% read-path overhead.
fn report_trace_overhead(_c: &mut Criterion) {
    use indord_server::protocol::Response;
    use std::time::Duration;
    let (voc, db, _queries) = setup(1024);
    // No smoke-mode shrink here, on purpose: the whole group costs
    // tens of milliseconds, and CI's bench gate compares the smoke
    // run's recorded values against the committed full-run baseline —
    // they must be measured identically or the gate compares noise.
    let iters = 60;
    let rounds = 12;
    const LEGS: [(&str, Option<u64>); 2] = [("disabled", None), ("enabled", Some(u64::MAX))];
    let mut conns: Vec<_> = LEGS
        .iter()
        .map(|&(_, slow)| serving_conn(&voc, &db).with_slow_ms(slow))
        .collect();
    // The overhead under measure is ~100–200ns on a ~5µs request, well
    // inside this box's frequency drift over a single leg's runtime —
    // so the legs interleave across rounds and each keeps its best
    // median: drift hits both legs instead of whichever ran last.
    let mut read_means = [Duration::MAX; 2];
    let mut write_means = [Duration::MAX; 2];
    // Both legs must write the *identical* fact stream: the inserted
    // predicates/objects shape the scaffold and search space, and a
    // divergent pair of databases measures workload drift, not tracing.
    let mut steps = [0usize; 2];
    for _ in 0..rounds {
        for (i, conn) in conns.iter_mut().enumerate() {
            let read = workloads::time_median(iters, || {
                let r = criterion::black_box(conn.handle_line("ENTAIL disj"));
                assert!(matches!(r, Response::Verdict(_)), "read failed: {r:?}");
            });
            read_means[i] = read_means[i].min(read);
            let step = &mut steps[i];
            let write = workloads::time_median(iters, || {
                *step += 1;
                let r =
                    conn.handle_line(&format!("FACT P{}(t0_{});", *step % 3, (*step * 7) % 512));
                assert!(matches!(r, Response::Ok(_)), "write failed: {r:?}");
            });
            write_means[i] = write_means[i].min(write);
        }
    }
    for (i, (leg, _)) in LEGS.iter().enumerate() {
        criterion::record(
            &format!("prepared/serving-trace/read-mean/{leg}"),
            read_means[i].as_nanos() as f64,
        );
        criterion::record(
            &format!("prepared/serving-trace/write-mean/{leg}"),
            write_means[i].as_nanos() as f64,
        );
    }
    let read_ratio = read_means[1].as_secs_f64() / read_means[0].as_secs_f64().max(1e-12);
    let write_ratio = write_means[1].as_secs_f64() / write_means[0].as_secs_f64().max(1e-12);
    // Recorded as percent, not a ratio: the JSON dump keeps one
    // decimal, which would flatten 1.044x to 1.0.
    criterion::record(
        "prepared/serving-trace/read-overhead-pct",
        (read_ratio - 1.0) * 100.0,
    );
    println!(
        "prepared/trace-overhead       read mean: untraced {:>10?}  traced {:>10?} = {read_ratio:.3}x; write mean: untraced {:>10?}  traced {:>10?} = {write_ratio:.3}x",
        read_means[0], read_means[1], write_means[0], write_means[1]
    );
    println!(
        "prepared/trace-summary        tracing overhead on the read path: {:.1}% — target <= 5%: {}",
        (read_ratio - 1.0) * 100.0,
        if read_ratio <= 1.05 { "MET" } else { "NOT MET" }
    );
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_repeated_queries, bench_ne_workloads, bench_read_write, bench_eviction,
        bench_serving, bench_query_mix_batch, report_speedup, report_mvcc, report_durable,
        report_overload, report_trace_overhead
}
criterion_main!(benches);
