//! Table 1, monadic row — every cell regenerated.
//!
//! * data complexity (PTIME, linear): fixed conjunctive and disjunctive
//!   queries on databases growing to thousands of constants, via the
//!   Lemma 4.1 + SEQ pipeline and the wqo-compiled basis (Thm 6.5);
//! * expression complexity (PTIME): growing queries model-checked against
//!   a fixed model (Cor. 5.1);
//! * combined complexity (co-NP-complete): the Theorem 4.6 family, whose
//!   exponential path count defeats any fixed-parameter strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use indord_bench::workloads;
use indord_core::model::MonadicModel;
use indord_core::sym::Vocabulary;
use indord_entail::{bounded, disjunctive, modelcheck, paths};
use indord_reductions::thm46;
use indord_solvers::dnf::Dnf;
use indord_wqo as wqo;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(100))
}

fn bench_data_monadic(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1/data-monadic");
    let mut r = workloads::rng(42);
    let query = workloads::random_query(&mut r, 4, 3);
    let compiled = wqo::compile_conjunctive(&query);
    for len in [64usize, 256, 1024, 4096] {
        let db = workloads::observers_db_le(&mut r, 2, len / 2, 3, 0.2);
        g.throughput(Throughput::Elements(db.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("paths-fixed-query", db.len()),
            &db,
            |b, db| b.iter(|| paths::entails(db, &query)),
        );
        g.bench_with_input(BenchmarkId::new("wqo-compiled", db.len()), &db, |b, db| {
            b.iter(|| compiled.entails(db))
        });
    }
    // Disjunctive fixed query (2 disjuncts) on width-1 databases.
    let d1 = workloads::random_query(&mut r, 3, 3);
    let d2 = workloads::random_query(&mut r, 3, 3);
    let disjuncts = vec![d1, d2];
    for len in [64usize, 256, 1024] {
        let db = workloads::observers_db_le(&mut r, 1, len, 3, 0.2);
        g.bench_with_input(
            BenchmarkId::new("disjunctive-fixed-query", db.len()),
            &db,
            |b, db| b.iter(|| disjunctive::entails(db, &disjuncts).unwrap()),
        );
    }
    g.finish();
}

fn bench_expr_monadic(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1/expr-monadic");
    let mut r = workloads::rng(43);
    let model = MonadicModel::new(
        (0..256)
            .map(|_| workloads::random_label(&mut r, 3))
            .collect(),
    );
    for qn in [4usize, 8, 16, 32] {
        let q = workloads::random_query(&mut r, qn, 3);
        g.bench_with_input(BenchmarkId::new("modelcheck", qn), &q, |b, q| {
            b.iter(|| modelcheck::satisfies_conjunct(&model, q))
        });
    }
    g.finish();
}

fn bench_combined_monadic(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1/combined-monadic");
    for m in [4usize, 6, 8, 10] {
        let mut r = workloads::rng(44 + m as u64);
        let dnf = Dnf::random(&mut r, m, m, true);
        let mut voc = Vocabulary::new();
        let out = thm46::build(&mut voc, &dnf);
        g.bench_with_input(BenchmarkId::new("thm46-paths", m), &out, |b, out| {
            b.iter(|| paths::entails(&out.db, &out.query))
        });
        g.bench_with_input(BenchmarkId::new("thm46-bounded", m), &out, |b, out| {
            b.iter(|| bounded::entails(&out.db, &out.query))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_data_monadic, bench_expr_monadic, bench_combined_monadic
}
criterion_main!(benches);
