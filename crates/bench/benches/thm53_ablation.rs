//! Theorem 5.3 ablation: the `O(|D|^{2k} · |Pred| · Π|Φᵢ|)` bound, swept
//! along each parameter — database size, width `k`, and number of
//! disjuncts — plus the polynomial-delay countermodel enumeration the
//! paper highlights after the theorem. Props. 5.4/5.5 say the exponential
//! dependences on width and on the number of disjuncts are unavoidable;
//! the sweeps exhibit exactly those shapes.
//!
//! The `thm53/state-handling` group is the engine ablation: the same
//! search run with the pre-interning reference states (`Vec`-tuple keys,
//! SipHash maps, per-state graph traversals), with the interned packed
//! states built one-shot (scaffold rebuilt per call), and with a
//! session-style cached scaffold (the serving configuration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use indord_bench::workloads;
use indord_core::scaffold::DisjunctiveScaffold;
use indord_entail::disjunctive;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(500))
        .warm_up_time(Duration::from_millis(100))
}

fn bench_db_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm53/db-size");
    let mut r = workloads::rng(60);
    let disjuncts = vec![
        workloads::random_query(&mut r, 3, 3),
        workloads::random_query(&mut r, 3, 3),
    ];
    for len in [16usize, 32, 64, 128] {
        let db = workloads::observers_db_le(&mut r, 2, len, 3, 0.2);
        g.bench_with_input(BenchmarkId::new("k2", db.len()), &db, |b, db| {
            b.iter(|| disjunctive::entails(db, &disjuncts).unwrap())
        });
    }
    g.finish();
}

fn bench_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm53/width");
    let mut r = workloads::rng(61);
    let disjuncts = vec![
        workloads::random_query(&mut r, 3, 3),
        workloads::random_query(&mut r, 3, 3),
    ];
    for k in [1usize, 2, 3] {
        let db = workloads::observers_db_le(&mut r, k, 24 / k, 3, 0.2);
        g.bench_with_input(BenchmarkId::new("width", k), &db, |b, db| {
            b.iter(|| disjunctive::entails(db, &disjuncts).unwrap())
        });
    }
    g.finish();
}

fn bench_disjuncts(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm53/disjuncts");
    let mut r = workloads::rng(62);
    let pool: Vec<_> = (0..4)
        .map(|_| workloads::random_query(&mut r, 3, 3))
        .collect();
    let db = workloads::observers_db_le(&mut r, 2, 16, 3, 0.2);
    for n in [1usize, 2, 3, 4] {
        let disjuncts = pool[..n].to_vec();
        g.bench_with_input(BenchmarkId::new("n", n), &disjuncts, |b, dis| {
            b.iter(|| disjunctive::entails(&db, dis).unwrap())
        });
    }
    g.finish();
}

fn bench_state_handling(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm53/state-handling");
    let mut r = workloads::rng(64);
    let disjuncts = vec![
        workloads::random_query(&mut r, 3, 3),
        workloads::random_query(&mut r, 3, 3),
    ];
    for len in [32usize, 128, 512] {
        let db = workloads::observers_db_le(&mut r, 2, len, 3, 0.2);
        g.bench_with_input(BenchmarkId::new("reference", db.len()), &db, |b, db| {
            b.iter(|| disjunctive::reference::entails(db, &disjuncts).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("interned", db.len()), &db, |b, db| {
            b.iter(|| disjunctive::entails(db, &disjuncts).unwrap())
        });
        let scaffold = DisjunctiveScaffold::new(&db);
        g.bench_with_input(
            BenchmarkId::new("interned-cached", db.len()),
            &db,
            |b, db| {
                b.iter(|| {
                    disjunctive::check_scaffolded(db, &scaffold, &disjuncts, disjunctive::STATE_CAP)
                        .unwrap()
                        .holds()
                })
            },
        );
    }
    g.finish();
}

fn bench_enumeration_delay(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm53/enumeration");
    let mut r = workloads::rng(63);
    // A query that fails, so countermodels exist in numbers.
    let q = workloads::random_query(&mut r, 4, 4);
    for len in [6usize, 8, 10] {
        let db = workloads::observers_db_le(&mut r, 2, len, 3, 0.5);
        g.bench_with_input(BenchmarkId::new("first-16", db.len()), &db, |b, db| {
            b.iter(|| {
                disjunctive::countermodels(db, std::slice::from_ref(&q), 16)
                    .unwrap()
                    .len()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_db_size, bench_width, bench_disjuncts, bench_state_handling, bench_enumeration_delay
}
criterion_main!(benches);
