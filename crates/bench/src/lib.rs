//! # indord-bench
//!
//! Workload generators and measurement helpers shared by the Criterion
//! benches and the `experiments` binary, which together regenerate every
//! table and figure of the paper. See `benches/` and `src/bin/`.

#![forbid(unsafe_code)]

pub mod workloads;
