//! Workload generators shared by the Criterion benches and the
//! `experiments` binary.
//!
//! Every generator targets one of the structural parameters the paper's
//! complexity results are stated in: database size `|D|`, database width
//! `k` (number of "observers"), query size `|Φ|`, path count, number of
//! disjuncts, and predicate arity.

use indord_core::atom::OrderRel;
use indord_core::bitset::PredSet;
use indord_core::database::Database;
use indord_core::flexi::FlexiWord;
use indord_core::monadic::{MonadicDatabase, MonadicQuery};
use indord_core::ordgraph::OrderGraph;
use indord_core::sym::{PredSym, Vocabulary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for reproducible workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A random label over `n_preds` predicates (biased towards 1–2 members).
pub fn random_label<R: Rng>(rng: &mut R, n_preds: usize) -> PredSet {
    let mut l = PredSet::new();
    l.insert(PredSym::from_index(rng.gen_range(0..n_preds)));
    if rng.gen_bool(0.3) {
        l.insert(PredSym::from_index(rng.gen_range(0..n_preds)));
    }
    l
}

/// A width-`k` monadic database: `k` disjoint chains of `len` strictly
/// ordered labelled points (the "k observers" shape of §2).
pub fn observers_db<R: Rng>(rng: &mut R, k: usize, len: usize, n_preds: usize) -> MonadicDatabase {
    observers_db_le(rng, k, len, n_preds, 0.0)
}

/// As [`observers_db`] but with a fraction of `<=` edges, producing
/// genuine point-merging indefiniteness.
pub fn observers_db_le<R: Rng>(
    rng: &mut R,
    k: usize,
    len: usize,
    n_preds: usize,
    le_fraction: f64,
) -> MonadicDatabase {
    let n = k * len;
    let mut labels = Vec::with_capacity(n);
    let mut edges = Vec::new();
    for c in 0..k {
        let base = c * len;
        for i in 0..len {
            labels.push(random_label(rng, n_preds));
            if i > 0 {
                let rel = if le_fraction > 0.0 && rng.gen_bool(le_fraction) {
                    OrderRel::Le
                } else {
                    OrderRel::Lt
                };
                edges.push((base + i - 1, base + i, rel));
            }
        }
    }
    let graph = OrderGraph::from_dag_edges(n, &edges).expect("chains are acyclic");
    MonadicDatabase::new(graph, labels)
}

/// As [`observers_db_le`] but at the [`Database`] level: the vocabulary
/// gains monadic predicates `P0..P{n_preds}`, and the database holds the
/// raw facts and order atoms (the input shape of the engine facade and
/// of `Session`s, exercising normalization in the measurement).
pub fn observers_database<R: Rng>(
    voc: &mut Vocabulary,
    rng: &mut R,
    k: usize,
    len: usize,
    n_preds: usize,
    le_fraction: f64,
) -> Database {
    let preds: Vec<PredSym> = (0..n_preds)
        .map(|i| voc.monadic_pred(&format!("P{i}")))
        .collect();
    let mut db = Database::new();
    for c in 0..k {
        let mut chain = Vec::with_capacity(len);
        for i in 0..len {
            let t = voc.ord(&format!("t{c}_{i}"));
            chain.push(t);
            let label = random_label(rng, n_preds);
            for p in label.iter() {
                db.push_proper(
                    indord_core::atom::ProperAtom::new(
                        voc,
                        preds[p.index()],
                        vec![indord_core::atom::Term::Ord(t)],
                    )
                    .expect("monadic order atom"),
                );
            }
        }
        for w in chain.windows(2) {
            if le_fraction > 0.0 && rng.gen_bool(le_fraction) {
                db.assert_le(w[0], w[1]);
            } else {
                db.assert_lt(w[0], w[1]);
            }
        }
    }
    db
}

/// Adds `count` §7 `!=` constraints between random positions of
/// *different* observer chains of an [`observers_database`] built with
/// the same `k`/`len` (cross-chain constants are never related by order
/// atoms nor merged by N1, so every constraint genuinely restricts the
/// model region). Requires `k >= 2`.
pub fn add_ne_pairs<R: Rng>(
    voc: &mut Vocabulary,
    db: &mut Database,
    rng: &mut R,
    k: usize,
    len: usize,
    count: usize,
) {
    assert!(k >= 2, "cross-chain != pairs need at least two chains");
    for _ in 0..count {
        let c1 = rng.gen_range(0..k);
        let mut c2 = rng.gen_range(0..k);
        while c2 == c1 {
            c2 = rng.gen_range(0..k);
        }
        let u = voc.ord(&format!("t{c1}_{}", rng.gen_range(0..len)));
        let v = voc.ord(&format!("t{c2}_{}", rng.gen_range(0..len)));
        db.assert_ne(u, v);
    }
}

/// A random flexi-word of the given length (sequential query).
pub fn random_flexiword<R: Rng>(rng: &mut R, len: usize, n_preds: usize) -> FlexiWord {
    let mut w = FlexiWord::empty();
    for i in 0..len {
        let rel = if i == 0 || rng.gen_bool(0.7) {
            OrderRel::Lt
        } else {
            OrderRel::Le
        };
        w.push(rel, random_label(rng, n_preds));
    }
    w
}

/// A "ladder" query of `c` columns and 2 rows — width two, `2^c` paths —
/// the query shape of Theorem 4.6 with random labels. Drives the
/// paths-vs-bounded crossover.
pub fn ladder_query<R: Rng>(rng: &mut R, columns: usize, n_preds: usize) -> MonadicQuery {
    let n = 2 * columns;
    let mut edges = Vec::new();
    for j in 0..columns.saturating_sub(1) {
        for r in 0..2 {
            for r2 in 0..2 {
                edges.push((2 * j + r, 2 * (j + 1) + r2, OrderRel::Lt));
            }
        }
    }
    let graph = OrderGraph::from_dag_edges(n, &edges).expect("acyclic");
    let labels = (0..n).map(|_| random_label(rng, n_preds)).collect();
    MonadicQuery::new(graph, labels)
}

/// A random conjunctive monadic dag query on `n` vertices.
pub fn random_query<R: Rng>(rng: &mut R, n: usize, n_preds: usize) -> MonadicQuery {
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            match rng.gen_range(0..5) {
                0 => edges.push((i, j, OrderRel::Lt)),
                1 => edges.push((i, j, OrderRel::Le)),
                _ => {}
            }
        }
    }
    let graph = OrderGraph::from_dag_edges(n, &edges).expect("forward edges");
    let labels = (0..n).map(|_| random_label(rng, n_preds)).collect();
    MonadicQuery::new(graph, labels)
}

/// Least-squares slope of `log y` against `log x` — the empirical
/// polynomial degree of a scaling series.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.max(1e-12).ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Median wall-clock time of `f` over `iters` runs (for the experiments
/// binary; Criterion handles the real statistics in benches).
pub fn time_median(iters: usize, mut f: impl FnMut()) -> std::time::Duration {
    let mut samples: Vec<std::time::Duration> = (0..iters.max(1))
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observers_db_has_requested_width() {
        let mut r = rng(1);
        for k in 1..=4 {
            let db = observers_db(&mut r, k, 5, 3);
            assert_eq!(db.width(), k);
            assert_eq!(db.len(), 5 * k);
        }
    }

    #[test]
    fn ladder_query_has_expected_paths() {
        let mut r = rng(2);
        let q = ladder_query(&mut r, 5, 2);
        assert_eq!(q.path_count(), 32);
        assert_eq!(q.width(), 2);
    }

    #[test]
    fn slope_of_quadratic_is_two() {
        let pts: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, (i * i) as f64)).collect();
        let s = log_log_slope(&pts);
        assert!((s - 2.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn flexiword_generator_shape() {
        let mut r = rng(3);
        let w = random_flexiword(&mut r, 7, 3);
        assert_eq!(w.len(), 7);
    }
}
