//! Regenerates every table and figure of the paper as terminal output:
//! correctness of each hardness reduction against an independent decider,
//! and empirical scaling shapes for each claimed complexity class.
//!
//! Run with `cargo run -p indord-bench --bin experiments --release`.
//! The output of this binary is recorded in EXPERIMENTS.md.

use indord_bench::workloads::{self, log_log_slope, time_median};
use indord_core::model::MonadicModel;
use indord_core::parse::{parse_database, parse_query};
use indord_core::sym::Vocabulary;
use indord_entail::{bounded, disjunctive, modelcheck, paths, seq, Engine, Strategy};
use indord_reductions::{thm32, thm33, thm34, thm46, thm71};
use indord_semantics::{all_semantics, OrderType};
use indord_solvers::coloring::Graph;
use indord_solvers::dnf::Dnf;
use indord_solvers::formula::Formula;
use indord_solvers::mono3sat::Mono3Sat;
use indord_solvers::qbf::Pi2;
use indord_wqo as wqo;

fn main() {
    println!("# indord experiments — regenerating the paper's tables\n");
    table1_nary();
    table1_monadic();
    table2();
    thm53_ablation();
    section2_semantics();
    section7_inequality();
    klug_containment();
    wqo_compilation();
    println!("\nAll experiment assertions passed.");
}

fn secs(d: std::time::Duration) -> f64 {
    d.as_secs_f64()
}

/// A width-two ladder query with empty labels: satisfied by any database
/// with a strict chain of the right length, forcing the bounded-width
/// search through its entire state space.
fn structural_ladder(columns: usize) -> indord_core::monadic::MonadicQuery {
    use indord_core::atom::OrderRel;
    let n = 2 * columns;
    let mut edges = Vec::new();
    for j in 0..columns - 1 {
        for r in 0..2 {
            for r2 in 0..2 {
                edges.push((2 * j + r, 2 * (j + 1) + r2, OrderRel::Lt));
            }
        }
    }
    let graph = indord_core::ordgraph::OrderGraph::from_dag_edges(n, &edges).unwrap();
    indord_core::monadic::MonadicQuery::new(graph, vec![indord_core::bitset::PredSet::new(); n])
}

/// A single-vertex query whose label no database point carries.
fn impossible_query() -> indord_core::monadic::MonadicQuery {
    let graph = indord_core::ordgraph::OrderGraph::from_dag_edges(1, &[]).unwrap();
    indord_core::monadic::MonadicQuery::new(
        graph,
        vec![indord_core::bitset::PredSet::singleton(
            indord_core::sym::PredSym::from_index(40),
        )],
    )
}

/// The complete DNF over m variables: all 2^m sign patterns — a tautology
/// whose Theorem 4.6 image has 2^m components.
fn complete_dnf(m: usize) -> Dnf {
    let mut terms = Vec::with_capacity(1 << m);
    for mask in 0..(1u32 << m) {
        let term = (0..m)
            .map(|i| {
                let v = (i + 1) as i32;
                if mask & (1 << i) != 0 {
                    v
                } else {
                    -v
                }
            })
            .collect();
        terms.push(term);
    }
    Dnf { n_vars: m, terms }
}

// ---------------------------------------------------------------- Table 1

fn table1_nary() {
    println!("## Table 1 — n-ary predicates");
    println!("paper: data co-NP-complete | expression NP-complete | combined Π₂ᵖ-complete\n");

    // Data complexity: Theorem 3.2 reduction, verified against DPLL.
    let mut agree = 0;
    let mut total = 0;
    let mut r = workloads::rng(1001);
    let mut cases: Vec<Mono3Sat> = (0..5).map(|_| Mono3Sat::random(&mut r, 3, 1, 1)).collect();
    cases.push(Mono3Sat {
        n_vars: 1,
        pos_clauses: vec![[0, 0, 0]],
        neg_clauses: vec![[0, 0, 0]],
    });
    for inst in &cases {
        let mut voc = Vocabulary::new();
        let out = thm32::build(&mut voc, inst, thm32::Layout::WidthTwo);
        let got = Engine::new(&voc)
            .with_strategy(Strategy::Naive)
            .entails(&out.db, &out.query)
            .unwrap()
            .holds();
        agree += usize::from(got != inst.satisfiable());
        total += 1;
    }
    assert_eq!(agree, total);
    println!(
        "  [data]     Thm 3.2 vs DPLL agreement: {agree}/{total} (fixed query, width-2 databases)"
    );

    // Growth of the naive countermodel search on unsat families.
    let mut pts = Vec::new();
    for m in [1usize, 2] {
        let inst = Mono3Sat {
            n_vars: m,
            pos_clauses: (0..m as u32).map(|i| [i, i, i]).collect(),
            neg_clauses: (0..m as u32).map(|i| [i, i, i]).collect(),
        };
        let mut voc = Vocabulary::new();
        let out = thm32::build(&mut voc, &inst, thm32::Layout::WidthTwo);
        let t = time_median(3, || {
            let eng = Engine::new(&voc).with_strategy(Strategy::Naive);
            assert!(eng.entails(&out.db, &out.query).unwrap().holds());
        });
        pts.push((out.db.len() as f64, secs(t)));
        println!(
            "  [data]     naive co-NP search, {m} clause pair(s): |D|={} t={:.4}s",
            out.db.len(),
            secs(t)
        );
    }
    let ratio = pts[1].1 / pts[0].1.max(1e-9);
    println!(
        "  [data]     growth factor for ~2x database: {ratio:.1}x  (super-polynomial shape ✓)"
    );

    // Expression complexity: Theorem 3.4 vs DPLL.
    let mut agree = 0;
    let mut r = workloads::rng(1002);
    for _ in 0..20 {
        let f = Formula::random(&mut r, 4, 3);
        let mut voc = Vocabulary::new();
        let db = thm34::fixed_database(&mut voc);
        let q = thm34::satisfiability_query(&mut voc, &f);
        let got = Engine::new(&voc).entails(&db, &q).unwrap().holds();
        agree += usize::from(got == f.satisfiable_brute(4));
    }
    assert_eq!(agree, 20);
    println!("  [expr]     Thm 3.4 vs brute-force SAT agreement: {agree}/20 (fixed database E)");

    // Combined complexity: Theorem 3.3 vs the Π₂ evaluator.
    let mut agree = 0;
    let mut r = workloads::rng(1003);
    for _ in 0..6 {
        let pi2 = Pi2::random(&mut r, 2, 2);
        let mut voc = Vocabulary::new();
        let out = thm33::build(&mut voc, &pi2);
        let got = Engine::new(&voc)
            .with_strategy(Strategy::Naive)
            .entails(&out.db, &out.query)
            .unwrap()
            .holds();
        agree += usize::from(got == pi2.is_true());
    }
    assert_eq!(agree, 6);
    println!("  [combined] Thm 3.3 vs Π₂-QBF evaluator agreement: {agree}/6\n");
}

fn table1_monadic() {
    println!("## Table 1 — monadic predicates");
    println!("paper: data PTIME | expression PTIME | combined co-NP-complete\n");

    // Data complexity: fixed query, growing databases → slope ≈ 1.
    let mut r = workloads::rng(1010);
    let q = workloads::random_query(&mut r, 4, 3);
    let compiled = wqo::compile_conjunctive(&q);
    let mut pts_paths = Vec::new();
    let mut pts_wqo = Vec::new();
    for len in [128usize, 512, 2048, 8192] {
        let db = workloads::observers_db_le(&mut r, 2, len / 2, 3, 0.2);
        let tp = time_median(5, || {
            let _ = paths::entails(&db, &q);
        });
        let tw = time_median(5, || {
            let _ = compiled.entails(&db);
        });
        pts_paths.push((db.len() as f64, secs(tp)));
        pts_wqo.push((db.len() as f64, secs(tw)));
        println!(
            "  [data]     |D|={:5}  paths={:.5}s  wqo-compiled={:.5}s",
            db.len(),
            secs(tp),
            secs(tw)
        );
    }
    let s1 = log_log_slope(&pts_paths);
    let s2 = log_log_slope(&pts_wqo);
    println!("  [data]     log-log slope: paths {s1:.2}, compiled {s2:.2}  (paper: linear, ≈1) ");
    assert!(
        s1 < 1.7,
        "paths data complexity should be ~linear, got {s1}"
    );

    // Expression complexity: model checking growing queries (Cor 5.1).
    let model = MonadicModel::new(
        (0..512)
            .map(|_| workloads::random_label(&mut r, 3))
            .collect(),
    );
    let mut pts = Vec::new();
    for qn in [4usize, 8, 16, 32] {
        let q = workloads::random_query(&mut r, qn, 3);
        let t = time_median(5, || {
            let _ = modelcheck::satisfies_conjunct(&model, &q);
        });
        pts.push((qn as f64, secs(t)));
        println!("  [expr]     |Φ|={qn:3}  modelcheck={:.6}s", secs(t));
    }
    let s = log_log_slope(&pts);
    println!("  [expr]     log-log slope in |Φ|: {s:.2}  (paper: polynomial)");

    // Combined complexity: Theorem 4.6 agreement + growth.
    let mut agree = 0;
    let mut r2 = workloads::rng(1011);
    for _ in 0..20 {
        let dnf = Dnf::random(&mut r2, 3, 4, true);
        let mut voc = Vocabulary::new();
        let out = thm46::build(&mut voc, &dnf);
        let got = bounded::entails(&out.db, &out.query);
        agree += usize::from(got == dnf.is_tautology());
    }
    assert_eq!(agree, 20);
    println!("  [combined] Thm 4.6 vs DNF-tautology agreement: {agree}/20");
    let mut prev = 0.0f64;
    for m in [4usize, 8, 12] {
        let mut r3 = workloads::rng(1012 + m as u64);
        let dnf = Dnf::random(&mut r3, m, m, true);
        let mut voc = Vocabulary::new();
        let out = thm46::build(&mut voc, &dnf);
        let t = secs(time_median(3, || {
            let _ = paths::entails(&out.db, &out.query);
        }));
        let note = if prev > 0.0 {
            format!("  ({:.1}x)", t / prev)
        } else {
            String::new()
        };
        println!("  [combined] Thm 4.6 m={m:2}: paths engine {t:.5}s{note}");
        prev = t;
    }
    println!();
}

// ---------------------------------------------------------------- Table 2

fn table2() {
    println!("## Table 2 — combined complexity of conjunctive monadic queries");
    println!(
        "paper: sequential PTIME (any width) | nonsequential PTIME (bounded) / co-NP (unbounded)\n"
    );

    // Sequential: SEQ slope in |D| at width 2 and in width at fixed |D|.
    let mut r = workloads::rng(1020);
    let p = workloads::random_flexiword(&mut r, 8, 3);
    let mut pts = Vec::new();
    for len in [256usize, 1024, 4096, 16384] {
        let db = workloads::observers_db_le(&mut r, 2, len / 2, 3, 0.2);
        let t = secs(time_median(5, || {
            let _ = seq::entails(&db, &p);
        }));
        pts.push((len as f64, t));
        println!("  [seq]      |D|={len:6} width=2  SEQ={t:.5}s");
    }
    let s = log_log_slope(&pts);
    println!("  [seq]      log-log slope in |D|: {s:.2}  (paper: linear)");
    assert!(s < 1.7, "SEQ should be ~linear, got {s}");
    for k in [1usize, 8, 64] {
        let db = workloads::observers_db_le(&mut r, k, 2048 / k, 3, 0.2);
        let t = secs(time_median(5, || {
            let _ = seq::entails(&db, &p);
        }));
        println!("  [seq]      |D|=2048 width={k:2}  SEQ={t:.5}s  (width does not hurt)");
    }

    // Nonsequential bounded: Theorem 4.7 gives the upper bound
    // O(|D|^{k+1}·|Φ|); the measured exponent must stay below it (typical
    // instances sit well below the worst case).
    let mut r = workloads::rng(1021);
    let q = workloads::ladder_query(&mut r, 3, 2);
    let _ = structural_ladder(2); // (helper exercised elsewhere)
    for (k, lens) in [
        (1usize, [256usize, 1024, 4096]),
        (2, [64, 128, 256]),
        (3, [32, 64, 128]),
    ] {
        let mut pts = Vec::new();
        for len in lens {
            let db = workloads::observers_db_le(&mut r, k, len, 2, 0.2);
            let t = secs(time_median(3, || {
                let _ = bounded::entails(&db, &q);
            }));
            pts.push((db.len() as f64, t));
        }
        let s = log_log_slope(&pts);
        println!(
            "  [nonseq-b] Thm 4.7 width k={k}: measured exponent {s:.2} ≤ bound {}",
            k + 1
        );
        assert!(
            s < (k + 1) as f64 + 0.5,
            "exponent must respect the Thm 4.7 bound"
        );
    }

    // Nonsequential unbounded: the Theorem 4.6 family on *complete* DNFs
    // (guaranteed tautologies): the entailed case checks all 2^m paths.
    let mut prev = 0.0f64;
    for m in [4usize, 6, 8, 10] {
        let dnf = complete_dnf(m);
        let mut voc = Vocabulary::new();
        let out = thm46::build(&mut voc, &dnf);
        let t = secs(time_median(3, || {
            assert!(paths::entails(&out.db, &out.query));
        }));
        let note = if prev > 0.0 {
            format!("  ({:.1}x per +2 vars)", t / prev)
        } else {
            String::new()
        };
        println!(
            "  [nonseq-u] Thm 4.6 m={m:2} (width {}): {t:.5}s{note}",
            out.db.width()
        );
        prev = t;
    }
    println!();
}

// ------------------------------------------------------- Theorem 5.3 et al

fn thm53_ablation() {
    println!("## Theorem 5.3 — O(|D|^2k · |Pred| · Π|Φi|), ablations");
    let mut r = workloads::rng(1030);
    let disjuncts: Vec<_> = (0..4)
        .map(|_| workloads::random_query(&mut r, 3, 3))
        .collect();

    // |D| sweep at k = 2 with an unsatisfiable-label disjunct: the pointer
    // never advances, so the search walks the full (S, T) space — the
    // |D|^{2k} term in isolation.
    let impossible = vec![impossible_query()];
    let mut pts = Vec::new();
    for len in [8usize, 16, 32] {
        let db = workloads::observers_db_le(&mut r, 2, len, 3, 0.2);
        let t = secs(time_median(3, || {
            assert!(!disjunctive::entails(&db, &impossible).unwrap());
        }));
        pts.push((db.len() as f64, t));
        println!(
            "  [size]     |D|={:4} k=2 n=1(worst case): {t:.5}s",
            db.len()
        );
    }
    println!(
        "  [size]     empirical exponent: {:.2}  (paper: ≤ 2k = 4)",
        log_log_slope(&pts)
    );

    // width sweep.
    for k in [1usize, 2, 3] {
        let db = workloads::observers_db_le(&mut r, k, 24 / k, 3, 0.2);
        let t = secs(time_median(3, || {
            let _ = disjunctive::entails(&db, &disjuncts[..2]).unwrap();
        }));
        println!("  [width]    k={k} (|D|=24): {t:.5}s");
    }

    // disjunct-count sweep. Worst-case cost is exponential in n
    // (Prop. 5.4); typical random instances sit below that, so this row
    // reports the observed trend rather than a forced blow-up.
    let db = workloads::observers_db_le(&mut r, 2, 16, 3, 0.2);
    let mut prev = 0.0f64;
    for n in 1..=4usize {
        let t = secs(time_median(3, || {
            let _ = disjunctive::entails(&db, &disjuncts[..n]).unwrap();
        }));
        let note = if prev > 0.0 {
            format!("  ({:.1}x)", t / prev)
        } else {
            String::new()
        };
        println!("  [disjunct] n={n}: {t:.5}s{note}");
        prev = t;
    }

    // countermodel enumeration delay — the never-satisfiable query makes
    // every minimal model a countermodel, so enumeration always has work.
    let q = impossible_query();
    for len in [6usize, 8, 10] {
        let db = workloads::observers_db_le(&mut r, 2, len, 3, 0.5);
        let models = disjunctive::countermodels(&db, std::slice::from_ref(&q), 16).unwrap();
        let t = secs(time_median(3, || {
            let _ = disjunctive::countermodels(&db, std::slice::from_ref(&q), 16).unwrap();
        }));
        let per = if models.is_empty() {
            0.0
        } else {
            t / models.len() as f64
        };
        println!(
            "  [enum]     |D|={:3}: {} countermodels, {per:.6}s each (polynomial delay)",
            db.len(),
            models.len()
        );
    }
    println!();
}

// ------------------------------------------------------------ §2 semantics

fn section2_semantics() {
    println!("## §2 — order-type semantics (Fin / Z / Q)");
    // The two separating examples of the paper.
    let mut voc = Vocabulary::new();
    let db = parse_database(&mut voc, "pred P(ord); P(u);").unwrap();
    let q = parse_query(&mut voc, "exists t1 t2. t1 < t2").unwrap();
    let (fin, z, qq) = all_semantics(&mut voc, &db, &q).unwrap();
    println!("  ∃t1t2(t1<t2):              Fin={fin} Z={z} Q={qq}  (paper: false/true/true)");
    assert_eq!((fin, z, qq), (false, true, true));

    let mut voc = Vocabulary::new();
    let db = parse_database(&mut voc, "P(u); P(v); u < v;").unwrap();
    let q = parse_query(
        &mut voc,
        "exists t1 t2 t3. P(t1) & t1 < t2 & t2 < t3 & P(t3)",
    )
    .unwrap();
    let (fin, z, qq) = all_semantics(&mut voc, &db, &q).unwrap();
    println!("  midpoint query:            Fin={fin} Z={z} Q={qq}  (paper: false/false/true)");
    assert_eq!((fin, z, qq), (false, false, true));

    // Tight queries agree everywhere (Prop. 2.2) — sampled.
    let mut agree = 0;
    let mut r = workloads::rng(1040);
    for i in 0..10 {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); Q(v); u < v; R(w); v <= w;").unwrap();
        use rand::Rng;
        let (a, b) = (
            ["P", "Q", "R"][r.gen_range(0..3usize)],
            ["P", "Q", "R"][r.gen_range(0..3usize)],
        );
        let rel = if i % 2 == 0 { "<" } else { "<=" };
        let q = parse_query(
            &mut voc,
            &format!("exists s t. {a}(s) & s {rel} t & {b}(t)"),
        )
        .unwrap();
        let (fin, z, qq) = all_semantics(&mut voc, &db, &q).unwrap();
        agree += usize::from(fin == z && z == qq);
    }
    println!("  tight queries, 3 semantics agree: {agree}/10  (paper: always)\n");
    assert_eq!(agree, 10);
}

// ------------------------------------------------------------ §7 inequality

fn section7_inequality() {
    println!("## §7 — inequality (Theorem 7.1)");
    let mut r = workloads::rng(1050);
    let mut agree1 = 0;
    let mut agree2 = 0;
    for _ in 0..8 {
        let g = Graph::random(&mut r, 5, 0.5);
        let mut voc = Vocabulary::new();
        let (db, q) = thm71::build_expression(&mut voc, &g);
        let got = Engine::new(&voc).entails(&db, &q).unwrap().holds();
        agree1 += usize::from(got == g.three_colorable());

        let mut voc = Vocabulary::new();
        let (db, q) = thm71::build_data(&mut voc, &g);
        let got = Engine::new(&voc).entails(&db, &q).unwrap().holds();
        agree2 += usize::from(got != g.three_colorable());
    }
    assert_eq!((agree1, agree2), (8, 8));
    println!("  Thm 7.1(1) expression vs 3-colouring: {agree1}/8");
    println!("  Thm 7.1(2) data vs non-3-colouring:   {agree2}/8\n");
}

// ----------------------------------------------------------- Klug / P 2.10

fn klug_containment() {
    println!("## Prop. 2.10 / Klug — containment of queries with inequalities");
    use indord_core::sym::Sort;
    use indord_relalg::{contained_in, RelQuery};
    let mut voc = Vocabulary::new();
    voc.pred("S", &[Sort::Order, Sort::Order]).unwrap();
    let q1 = RelQuery::boolean(
        parse_query(&mut voc, "exists s t. S(s, t) & s < t")
            .unwrap()
            .disjuncts()[0]
            .clone(),
    );
    let q2 = RelQuery::boolean(
        parse_query(&mut voc, "exists s w t. S(s, t) & s < w & w < t")
            .unwrap()
            .disjuncts()[0]
            .clone(),
    );
    let fin = contained_in(&mut voc, &q1, &q2, OrderType::Fin).unwrap();
    let z = contained_in(&mut voc, &q1, &q2, OrderType::Z).unwrap();
    let qq = contained_in(&mut voc, &q1, &q2, OrderType::Q).unwrap();
    println!("  [s<t] ⊆ [∃w s<w<t]: Fin={fin} Z={z} Q={qq}  (density felt only over Q)");
    assert_eq!((fin, z, qq), (false, false, true));

    // Π₂ᵖ lower bound instances through the full pipeline.
    for (truth, n_u, n_e, matrix) in [
        (
            true,
            1usize,
            1usize,
            Formula::Or(vec![
                Formula::And(vec![Formula::Var(0), Formula::Var(1)]),
                Formula::And(vec![
                    Formula::Not(Box::new(Formula::Var(0))),
                    Formula::Not(Box::new(Formula::Var(1))),
                ]),
            ]),
        ),
        (false, 1, 0, Formula::Var(0)),
    ] {
        let pi2 = Pi2 {
            n_universal: n_u,
            n_existential: n_e,
            matrix,
        };
        assert_eq!(pi2.is_true(), truth);
        let mut voc = Vocabulary::new();
        let inst = thm33::build(&mut voc, &pi2);
        let (q1, q2) = indord_relalg::entailment_as_containment(
            &mut voc,
            &inst.db,
            &inst.query.disjuncts()[0],
        )
        .unwrap();
        let got = contained_in(&mut voc, &q1, &q2, OrderType::Fin).unwrap();
        assert_eq!(got, truth);
        println!("  Π₂ sentence (truth={truth}) decided through containment: {got} ✓");
    }
    println!();
}

// ------------------------------------------------------------- §6 wqo

fn wqo_compilation() {
    println!("## §6 — wqo compilation (Theorem 6.5)");
    let mut r = workloads::rng(1060);
    // Conjunctive: compiled evaluation agrees with paths on samples.
    let mut agree = 0;
    for _ in 0..20 {
        let q = workloads::random_query(&mut r, 3, 3);
        let compiled = wqo::compile_conjunctive(&q);
        let db = workloads::observers_db_le(&mut r, 2, 6, 3, 0.3);
        agree += usize::from(compiled.entails(&db) == paths::entails(&db, &q));
    }
    assert_eq!(agree, 20);
    println!("  conjunctive basis D_Φ vs paths engine: {agree}/20");

    // Disjunctive: bounded basis search validated against Thm 5.3 engine.
    let q1 = indord_core::monadic::MonadicQuery::from_flexiword(
        &indord_core::flexi::FlexiWord::word(vec![
            workloads::random_label(&mut r, 2),
            workloads::random_label(&mut r, 2),
        ]),
    );
    let q2 = indord_core::monadic::MonadicQuery::from_flexiword(
        &indord_core::flexi::FlexiWord::word(vec![workloads::random_label(&mut r, 2)]),
    );
    let disjuncts = vec![q1, q2];
    let compiled = wqo::bounded_basis_search(
        &disjuncts,
        wqo::SearchLimits {
            max_chains: 2,
            max_letters: 3,
        },
    )
    .unwrap();
    let mut agree = 0;
    for _ in 0..20 {
        let db = workloads::observers_db(&mut r, 2, 3, 2);
        agree +=
            usize::from(compiled.entails(&db) == disjunctive::entails(&db, &disjuncts).unwrap());
    }
    println!(
        "  disjunctive bounded basis ({} elements) vs Thm 5.3 engine: {agree}/20",
        compiled.basis.len()
    );
    assert_eq!(agree, 20);
}
