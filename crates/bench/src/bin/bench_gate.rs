//! Bench-regression gate for CI.
//!
//! Compares a fresh bench JSON dump (a smoke run with `BENCH_JSON` set)
//! against the committed baseline and fails — exit code 1 — when a
//! gated measurement regressed by more than the allowed ratio.
//!
//! ```sh
//! BENCH_JSON=target/bench_gate.json cargo bench -p indord-bench --bench prepared -- --smoke
//! cargo run -p indord-bench --bin bench_gate -- target/bench_gate.json crates/bench/BENCH_prepared.json
//! ```
//!
//! Only the *sequential* serving leg is gated: the single-core CI
//! runner makes the storm/burst legs measure the scheduler's
//! timeslicing rather than the code under test, and the rwlock
//! write-mean leg is dominated by the 25ms read hold it deliberately
//! waits out. The MVCC write mean under a held read is the commit
//! path's own cost (patch + freeze + publish, never blocked), so it is
//! stable enough to gate even from a smoke run's short sample.

use std::process::ExitCode;

/// `(id, allowed current/baseline ratio)` — a gated entry fails the run
/// when `current > ratio * baseline`. The serving-trace legs are both
/// sequential (see `report_trace_overhead`), so they are stable enough
/// to gate: `disabled` guards the untraced hot path against recorder
/// cost leaking in, `enabled` guards the recorder itself.
const GATED: &[(&str, f64)] = &[
    ("prepared/serving-mvcc/write-mean-under-long-read/mvcc", 2.0),
    ("prepared/serving-trace/read-mean/disabled", 2.0),
    ("prepared/serving-trace/read-mean/enabled", 2.0),
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(current_path), Some(baseline_path)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_gate <current.json> <baseline.json>");
        return ExitCode::from(2);
    };
    let current = match read_results(&current_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_gate: {current_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match read_results(&baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_gate: {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failed = false;
    for &(id, max_ratio) in GATED {
        let Some(&cur) = current.iter().find(|(k, _)| k == id).map(|(_, v)| v) else {
            eprintln!(
                "bench_gate: {id} missing from {current_path} — gate ran on the wrong bench?"
            );
            failed = true;
            continue;
        };
        let Some(&base) = baseline.iter().find(|(k, _)| k == id).map(|(_, v)| v) else {
            eprintln!("bench_gate: {id} missing from baseline {baseline_path}");
            failed = true;
            continue;
        };
        let ratio = cur / base.max(1e-12);
        let verdict = if ratio > max_ratio { "REGRESSED" } else { "ok" };
        println!(
            "bench_gate: {id}: current {cur:.0} ns vs baseline {base:.0} ns ({ratio:.2}x, limit {max_ratio:.1}x) — {verdict}"
        );
        failed |= ratio > max_ratio;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn read_results(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    Ok(parse_results(&text))
}

/// Extracts `(id, ns_per_iter)` pairs from the shim's dump format: one
/// `{"id": "...", "ns_per_iter": N}` object per line. Line-oriented on
/// purpose — the dump is machine-written, and a hand-rolled scanner
/// keeps this binary dependency-free.
fn parse_results(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"id\": \"") else {
            continue;
        };
        let Some((id, rest)) = rest.split_once("\", \"ns_per_iter\": ") else {
            continue;
        };
        let value = rest.trim_end_matches(['}', ',', ' ']);
        if let Ok(v) = value.parse::<f64>() {
            out.push((id.to_string(), v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::parse_results;

    #[test]
    fn parses_the_shim_dump_format() {
        let dump = "{\n  \"bench\": \"prepared\",\n  \"results\": [\n    {\"id\": \"a/b\", \"ns_per_iter\": 12.5},\n    {\"id\": \"c/d\", \"ns_per_iter\": 3.0}\n  ]\n}\n";
        assert_eq!(
            parse_results(dump),
            vec![("a/b".to_string(), 12.5), ("c/d".to_string(), 3.0)]
        );
    }

    #[test]
    fn ignores_malformed_lines() {
        assert!(parse_results("{\"id\": \"x\"}\nnot json\n").is_empty());
    }
}
