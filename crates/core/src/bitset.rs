//! Dense, growable bitsets.
//!
//! Two closely related types:
//!
//! * [`BitSet`] — a general bitset over `usize` indices, used for
//!   reachability closures in [`crate::ordgraph`];
//! * [`PredSet`] — a set of predicate ids, used as the *label* of a vertex
//!   in monadic databases/queries and of a point in a model (the alphabet
//!   `A = P(Pred)` of §4 of the paper).
//!
//! `PredSet` is a separate type so the two cannot be confused, and stores
//! its first 64 bits inline (no heap) — see its type docs. Subset tests
//! (`⊆`) dominate the hot paths of the entailment engines (they implement
//! the `a ⊆ D[u]` tests of the `SEQ` algorithm), so they are
//! word-parallel.

use crate::sym::PredSym;
use std::fmt;

/// A growable set of small unsigned integers, stored one bit per element.
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        BitSet { words: Vec::new() }
    }

    /// Creates an empty set with capacity for indices `< n` without
    /// reallocation.
    pub fn with_capacity(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Creates the set `{0, 1, ..., n-1}`.
    pub fn full(n: usize) -> Self {
        let mut s = BitSet::with_capacity(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `i`; returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        self.words.get(w).is_some_and(|x| x & (1 << b) != 0)
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self ⊆ other`, word-parallel.
    #[inline]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        for (i, &w) in self.words.iter().enumerate() {
            let o = other.words.get(i).copied().unwrap_or(0);
            if w & !o != 0 {
                return false;
            }
        }
        true
    }

    /// Tests whether the two sets share any element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (i, &w) in other.words.iter().enumerate() {
            self.words[i] |= w;
        }
    }

    /// In-place union, reporting whether any element was actually added —
    /// the primitive behind the incremental reachability-closure patch,
    /// which must know which vertices' closures genuinely grew.
    pub fn union_with_changed(&mut self, other: &BitSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut grew = 0u64;
        for (i, &w) in other.words.iter().enumerate() {
            grew |= w & !self.words[i];
            self.words[i] |= w;
        }
        grew != 0
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= !other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates the elements in increasing order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the elements of a [`BitSet`].
pub struct BitSetIter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + b);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

/// A set of predicate symbols — one letter of the alphabet `A = P(Pred)`
/// over which flexi-words are formed (§4 of the paper).
///
/// Unlike [`BitSet`], the first 64 predicate ids live in an inline word
/// with a heap spill only for ids ≥ 64 — a realistic vocabulary never
/// spills, so a `Vec<PredSet>` (vertex labels, object profiles) clones
/// as one flat `memcpy` instead of one allocation per element. That
/// keeps the copy-on-write unshare of the monadic view O(|V|) cheap on
/// the serving commit path. The spill is kept free of trailing zero
/// words, so the derived `Eq`/`Hash`/`Ord` are canonical (two
/// representations of the same set cannot diverge).
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct PredSet {
    head: u64,
    rest: Vec<u64>,
}

impl PredSet {
    /// The empty label.
    pub fn new() -> Self {
        PredSet {
            head: 0,
            rest: Vec::new(),
        }
    }

    /// Singleton label `{p}`.
    pub fn singleton(p: PredSym) -> Self {
        let mut s = PredSet::new();
        s.insert(p);
        s
    }

    /// Inserts a predicate; returns `true` if newly added.
    pub fn insert(&mut self, p: PredSym) -> bool {
        let i = p.index();
        if i < 64 {
            let had = self.head & (1 << i) != 0;
            self.head |= 1 << i;
            return !had;
        }
        let (w, b) = ((i - 64) / 64, (i - 64) % 64);
        if w >= self.rest.len() {
            self.rest.resize(w + 1, 0);
        }
        let had = self.rest[w] & (1 << b) != 0;
        self.rest[w] |= 1 << b;
        !had
    }

    /// Removes a predicate; returns `true` if it was present.
    pub fn remove(&mut self, p: PredSym) -> bool {
        let i = p.index();
        if i < 64 {
            let had = self.head & (1 << i) != 0;
            self.head &= !(1 << i);
            return had;
        }
        let (w, b) = ((i - 64) / 64, (i - 64) % 64);
        if w >= self.rest.len() {
            return false;
        }
        let had = self.rest[w] & (1 << b) != 0;
        self.rest[w] &= !(1 << b);
        while self.rest.last() == Some(&0) {
            self.rest.pop();
        }
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, p: PredSym) -> bool {
        let i = p.index();
        if i < 64 {
            return self.head & (1 << i) != 0;
        }
        let (w, b) = ((i - 64) / 64, (i - 64) % 64);
        self.rest.get(w).is_some_and(|x| x & (1 << b) != 0)
    }

    /// `self ⊆ other` — the workhorse of the `SEQ` algorithm.
    #[inline]
    pub fn is_subset(&self, other: &PredSet) -> bool {
        if self.head & !other.head != 0 {
            return false;
        }
        self.rest
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.rest.get(i).copied().unwrap_or(0) == 0)
    }

    /// True iff no predicates.
    pub fn is_empty(&self) -> bool {
        self.head == 0 && self.rest.iter().all(|&w| w == 0)
    }

    /// Number of predicates in the label.
    pub fn len(&self) -> usize {
        self.head.count_ones() as usize
            + self
                .rest
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
    }

    /// In-place union (labels of order constants merged to one point).
    pub fn union_with(&mut self, other: &PredSet) {
        self.head |= other.head;
        if other.rest.len() > self.rest.len() {
            self.rest.resize(other.rest.len(), 0);
        }
        for (i, &w) in other.rest.iter().enumerate() {
            self.rest[i] |= w;
        }
    }

    /// Union returning a new set.
    pub fn union(&self, other: &PredSet) -> PredSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Iterates the predicate symbols in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = PredSym> + '_ {
        let head = self.head;
        let head_iter = std::iter::from_fn({
            let mut bits = head;
            move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(b)
            }
        });
        let rest_iter = self.rest.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(64 + w * 64 + b)
            })
        });
        head_iter.chain(rest_iter).map(PredSym::from_index)
    }
}

impl FromIterator<PredSym> for PredSet {
    fn from_iter<I: IntoIterator<Item = PredSym>>(iter: I) -> Self {
        let mut s = PredSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl fmt::Debug for PredSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.iter().map(|p| p.index()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(100));
        assert!(s.contains(3));
        assert!(s.contains(100));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn subset_across_lengths() {
        let a: BitSet = [1, 2].into_iter().collect();
        let b: BitSet = [1, 2, 200].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(BitSet::new().is_subset(&a));
    }

    #[test]
    fn union_with_changed_reports_growth() {
        let mut a: BitSet = [1, 2].into_iter().collect();
        let b: BitSet = [2, 130].into_iter().collect();
        assert!(a.union_with_changed(&b), "130 is new");
        assert!(!a.union_with_changed(&b), "second union adds nothing");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 130]);
        let mut empty = BitSet::new();
        assert!(!empty.union_with_changed(&BitSet::new()));
    }

    #[test]
    fn set_algebra() {
        let mut a: BitSet = [1, 2, 3].into_iter().collect();
        let b: BitSet = [3, 4].into_iter().collect();
        assert!(a.intersects(&b));
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        a.difference_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2]);
        a.intersect_with(&b);
        assert!(a.is_empty());
    }

    #[test]
    fn full_and_first() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert_eq!(s.first(), Some(0));
        assert!(s.contains(69));
        assert!(!s.contains(70));
        assert_eq!(BitSet::new().first(), None);
    }

    #[test]
    fn iter_order() {
        let s: BitSet = [64, 0, 63, 128].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 128]);
    }

    #[test]
    fn predset_basics() {
        let p0 = PredSym::from_index(0);
        let p1 = PredSym::from_index(1);
        let mut a = PredSet::singleton(p0);
        assert!(a.contains(p0));
        assert!(!a.contains(p1));
        a.insert(p1);
        let b = PredSet::singleton(p1);
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert_eq!(a.union(&b).len(), 2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![p0, p1]);
    }

    #[test]
    fn debug_formatting() {
        let s: BitSet = [5].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{5}");
    }
}
