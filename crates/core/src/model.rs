//! Finite models and model checking.
//!
//! A structure for an order database interprets the order sort as a linear
//! order and supports the database atoms (§2). For entailment it suffices to
//! consider **minimal models** (Prop. 2.8 / Cor. 2.9): models obtained by
//! interpreting object constants as themselves and topologically sorting
//! the order dag. [`FiniteModel`] represents such models with points
//! `0 < 1 < … < n-1`.
//!
//! [`FiniteModel::satisfies`] implements model checking of positive
//! existential queries (the expression-complexity-in-NP observation of
//! §3) by backtracking homomorphism search, including `!=` atoms (§7).

use crate::atom::OrderRel;
use crate::bitset::PredSet;
use crate::query::{ConjunctiveQuery, DnfQuery, QArg};
use crate::sym::{ObjSym, OrdSym, PredSym, Vocabulary};
use std::collections::HashMap;
use std::fmt;

/// A term of a finite model's facts: an object constant or a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MTerm {
    /// An object constant (interpreted as itself in minimal models).
    Obj(ObjSym),
    /// A point of the finite linear order, `0 <= p < n_points`.
    Pt(usize),
}

/// A ground fact holding in a finite model.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroundFact {
    /// The predicate.
    pub pred: PredSym,
    /// Arguments (objects and points).
    pub args: Vec<MTerm>,
}

/// A finite model: `n_points` linearly ordered points, an interpretation of
/// the database's order constants, and the proper facts that hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiniteModel {
    /// Number of points; point `i` precedes point `j` iff `i < j`.
    pub n_points: usize,
    /// Interpretation of order constants.
    pub point_of: HashMap<OrdSym, usize>,
    /// The proper facts.
    pub facts: Vec<GroundFact>,
}

impl FiniteModel {
    /// The object constants occurring in the facts.
    pub fn objects(&self) -> Vec<ObjSym> {
        let mut seen = HashMap::new();
        let mut out = Vec::new();
        for f in &self.facts {
            for a in &f.args {
                if let MTerm::Obj(o) = a {
                    if seen.insert(*o, ()).is_none() {
                        out.push(*o);
                    }
                }
            }
        }
        out
    }

    /// Model checking: `M |= Φ` for a DNF positive existential query,
    /// by backtracking homomorphism search disjunct by disjunct.
    pub fn satisfies(&self, query: &DnfQuery) -> bool {
        query.disjuncts.iter().any(|cq| self.satisfies_conjunct(cq))
    }

    /// Model checking for a single conjunctive disjunct.
    pub fn satisfies_conjunct(&self, cq: &ConjunctiveQuery) -> bool {
        // Index facts by predicate.
        let mut by_pred: HashMap<PredSym, Vec<&GroundFact>> = HashMap::new();
        for f in &self.facts {
            by_pred.entry(f.pred).or_default().push(f);
        }
        let mut obj_assign: Vec<Option<ObjSym>> = vec![None; cq.n_obj_vars];
        let mut ord_assign: Vec<Option<usize>> = vec![None; cq.n_ord_vars];
        self.match_proper(cq, &by_pred, 0, &mut obj_assign, &mut ord_assign)
    }

    fn order_atoms_consistent(cq: &ConjunctiveQuery, ord_assign: &[Option<usize>]) -> bool {
        cq.order.iter().all(|&(l, rel, r)| {
            match (ord_assign[l as usize], ord_assign[r as usize]) {
                (Some(a), Some(b)) => match rel {
                    OrderRel::Lt => a < b,
                    OrderRel::Le => a <= b,
                    OrderRel::Ne => a != b,
                },
                _ => true, // not yet fully assigned
            }
        })
    }

    fn match_proper(
        &self,
        cq: &ConjunctiveQuery,
        by_pred: &HashMap<PredSym, Vec<&GroundFact>>,
        atom_idx: usize,
        obj_assign: &mut Vec<Option<ObjSym>>,
        ord_assign: &mut Vec<Option<usize>>,
    ) -> bool {
        if atom_idx == cq.proper.len() {
            return self.assign_order_only(cq, 0, ord_assign);
        }
        let atom = &cq.proper[atom_idx];
        let Some(facts) = by_pred.get(&atom.pred) else {
            return false;
        };
        'facts: for f in facts {
            debug_assert_eq!(f.args.len(), atom.args.len());
            // Attempt unification, remembering what we newly bound.
            let mut bound_obj: Vec<usize> = Vec::new();
            let mut bound_ord: Vec<usize> = Vec::new();
            let undo = |obj_assign: &mut Vec<Option<ObjSym>>,
                        ord_assign: &mut Vec<Option<usize>>,
                        bound_obj: &[usize],
                        bound_ord: &[usize]| {
                for &i in bound_obj {
                    obj_assign[i] = None;
                }
                for &i in bound_ord {
                    ord_assign[i] = None;
                }
            };
            for (qa, ma) in atom.args.iter().zip(&f.args) {
                let ok = match (qa, ma) {
                    (QArg::Obj(i), MTerm::Obj(o)) => {
                        let i = *i as usize;
                        match obj_assign[i] {
                            Some(prev) => prev == *o,
                            None => {
                                obj_assign[i] = Some(*o);
                                bound_obj.push(i);
                                true
                            }
                        }
                    }
                    (QArg::Ord(i), MTerm::Pt(p)) => {
                        let i = *i as usize;
                        match ord_assign[i] {
                            Some(prev) => prev == *p,
                            None => {
                                ord_assign[i] = Some(*p);
                                bound_ord.push(i);
                                true
                            }
                        }
                    }
                    _ => false, // sort clash: ill-typed fact for this atom
                };
                if !ok {
                    undo(obj_assign, ord_assign, &bound_obj, &bound_ord);
                    continue 'facts;
                }
            }
            if !Self::order_atoms_consistent(cq, ord_assign) {
                undo(obj_assign, ord_assign, &bound_obj, &bound_ord);
                continue 'facts;
            }
            if self.match_proper(cq, by_pred, atom_idx + 1, obj_assign, ord_assign) {
                return true;
            }
            undo(obj_assign, ord_assign, &bound_obj, &bound_ord);
        }
        false
    }

    /// Assigns the order variables not bound by any proper atom (the
    /// non-tight variables) by iterating over all points.
    fn assign_order_only(
        &self,
        cq: &ConjunctiveQuery,
        from: usize,
        ord_assign: &mut Vec<Option<usize>>,
    ) -> bool {
        let Some(next) = (from..cq.n_ord_vars).find(|&i| ord_assign[i].is_none()) else {
            return Self::order_atoms_consistent(cq, ord_assign);
        };
        for p in 0..self.n_points {
            ord_assign[next] = Some(p);
            if Self::order_atoms_consistent(cq, ord_assign)
                && self.assign_order_only(cq, next + 1, ord_assign)
            {
                return true;
            }
            ord_assign[next] = None;
        }
        false
    }

    /// Renders the model point by point.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        DisplayModel { m: self, voc }
    }
}

struct DisplayModel<'a> {
    m: &'a FiniteModel,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayModel<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "points 0..{}", self.m.n_points)?;
        let mut consts: Vec<(&str, usize)> = self
            .m
            .point_of
            .iter()
            .map(|(u, &p)| (self.voc.ord_name(*u), p))
            .collect();
        consts.sort_by_key(|&(_, p)| p);
        for (name, p) in consts {
            writeln!(f, "  {name} ↦ {p}")?;
        }
        for fact in &self.m.facts {
            write!(f, "  {}(", self.voc.pred_name(fact.pred))?;
            for (i, a) in fact.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match a {
                    MTerm::Obj(o) => write!(f, "{}", self.voc.obj_name(*o))?,
                    MTerm::Pt(p) => write!(f, "pt{p}")?,
                }
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

/// A finite model over monadic (order-sorted) predicates: one label set per
/// point. This is exactly the *word representation* of models from §4 —
/// `M[u₁] < M[u₂] < … < M[uₙ]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct MonadicModel {
    /// `labels[p]` is the set of predicates true at point `p`.
    pub labels: Vec<PredSet>,
}

impl MonadicModel {
    /// Builds from label sets.
    pub fn new(labels: Vec<PredSet>) -> Self {
        MonadicModel { labels }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the model has no points.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Renders as a word, e.g. `{P,Q} {R} {}`.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        DisplayMonadic { m: self, voc }
    }
}

struct DisplayMonadic<'a> {
    m: &'a MonadicModel,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayMonadic<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.m.labels.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{{")?;
            for (j, p) in l.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.voc.pred_name(p))?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryExpr;
    use crate::sym::Sort;

    fn fixture() -> (Vocabulary, FiniteModel) {
        let mut v = Vocabulary::new();
        v.pred("P", &[Sort::Object, Sort::Order]).unwrap();
        v.monadic_pred("Q");
        let p = v.find_pred("P").unwrap();
        let q = v.find_pred("Q").unwrap();
        let a = v.obj("a");
        let b = v.obj("b");
        let m = FiniteModel {
            n_points: 3,
            point_of: HashMap::new(),
            facts: vec![
                GroundFact {
                    pred: p,
                    args: vec![MTerm::Obj(a), MTerm::Pt(0)],
                },
                GroundFact {
                    pred: p,
                    args: vec![MTerm::Obj(b), MTerm::Pt(2)],
                },
                GroundFact {
                    pred: q,
                    args: vec![MTerm::Pt(1)],
                },
            ],
        };
        (v, m)
    }

    fn dnf(v: &Vocabulary, e: QueryExpr) -> DnfQuery {
        e.to_dnf(v).unwrap()
    }

    #[test]
    fn positive_match() {
        let (v, m) = fixture();
        let p = v.find_pred("P").unwrap();
        // exists x s t. P(x,s) & s < t & P(x2,t) with distinct object vars
        let e = QueryExpr::Exists(
            vec!["x".into(), "y".into(), "s".into(), "t".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::Proper {
                    pred: p,
                    args: vec![
                        crate::query::QTerm::Var("x".into()),
                        crate::query::QTerm::Var("s".into()),
                    ],
                },
                QueryExpr::lt("s", "t"),
                QueryExpr::Proper {
                    pred: p,
                    args: vec![
                        crate::query::QTerm::Var("y".into()),
                        crate::query::QTerm::Var("t".into()),
                    ],
                },
            ])),
        );
        assert!(m.satisfies(&dnf(&v, e)));
    }

    #[test]
    fn object_variable_consistency() {
        let (v, m) = fixture();
        let p = v.find_pred("P").unwrap();
        // same object at two strictly ordered times: a is at 0 only, b at 2
        // only, so this must fail.
        let e = QueryExpr::Exists(
            vec!["x".into(), "s".into(), "t".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::Proper {
                    pred: p,
                    args: vec![
                        crate::query::QTerm::Var("x".into()),
                        crate::query::QTerm::Var("s".into()),
                    ],
                },
                QueryExpr::lt("s", "t"),
                QueryExpr::Proper {
                    pred: p,
                    args: vec![
                        crate::query::QTerm::Var("x".into()),
                        crate::query::QTerm::Var("t".into()),
                    ],
                },
            ])),
        );
        assert!(!m.satisfies(&dnf(&v, e)));
    }

    #[test]
    fn order_only_variable_needs_intermediate_point() {
        let (v, m) = fixture();
        let q = v.find_pred("Q").unwrap();
        // exists s w t. Q(s) & s < w & w < t — needs two points above Q(1):
        // only point 2 exists above 1, so exists w: 1 < w < t fails… w=2
        // needs t>2 which does not exist. Must fail.
        let e = QueryExpr::Exists(
            vec!["s".into(), "w".into(), "t".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::atom1(q, "s"),
                QueryExpr::lt("s", "w"),
                QueryExpr::lt("w", "t"),
            ])),
        );
        assert!(!m.satisfies(&dnf(&v, e)));
        // exists s w. Q(s) & s < w succeeds with w = 2.
        let e = QueryExpr::Exists(
            vec!["s".into(), "w".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::atom1(q, "s"),
                QueryExpr::lt("s", "w"),
            ])),
        );
        assert!(m.satisfies(&dnf(&v, e)));
    }

    #[test]
    fn le_and_ne_atoms() {
        let (v, m) = fixture();
        let q = v.find_pred("Q").unwrap();
        // exists s t. Q(s) & s <= t & s != t: t must differ from s → t=2 ok? s=1, t must be >= 1 and != 1 → t=2. holds.
        let e = QueryExpr::Exists(
            vec!["s".into(), "t".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::atom1(q, "s"),
                QueryExpr::le("s", "t"),
                QueryExpr::ne("s", "t"),
            ])),
        );
        assert!(m.satisfies(&dnf(&v, e)));
    }

    #[test]
    fn disjunction_checked_per_disjunct() {
        let (v, m) = fixture();
        let q = v.find_pred("Q").unwrap();
        // (exists s t. Q(s) & Q(t) & s<t)  |  (exists s. Q(s))
        let e = QueryExpr::Or(vec![
            QueryExpr::Exists(
                vec!["s".into(), "t".into()],
                Box::new(QueryExpr::And(vec![
                    QueryExpr::atom1(q, "s"),
                    QueryExpr::atom1(q, "t"),
                    QueryExpr::lt("s", "t"),
                ])),
            ),
            QueryExpr::Exists(vec!["s".into()], Box::new(QueryExpr::atom1(q, "s"))),
        ]);
        assert!(m.satisfies(&dnf(&v, e)));
    }

    #[test]
    fn empty_model_satisfies_nothing_with_atoms() {
        let (v, _) = fixture();
        let q = v.find_pred("Q").unwrap();
        let m = FiniteModel {
            n_points: 0,
            point_of: HashMap::new(),
            facts: vec![],
        };
        let e = QueryExpr::Exists(vec!["s".into()], Box::new(QueryExpr::atom1(q, "s")));
        assert!(!m.satisfies(&dnf(&v, e)));
    }

    #[test]
    fn monadic_model_display() {
        let mut v = Vocabulary::new();
        let p = v.monadic_pred("P");
        let q = v.monadic_pred("Q");
        let m = MonadicModel::new(vec![
            [p, q].into_iter().collect(),
            PredSet::new(),
            PredSet::singleton(q),
        ]);
        assert_eq!(m.display(&v).to_string(), "{P,Q} {} {Q}");
        assert_eq!(m.len(), 3);
    }
}
