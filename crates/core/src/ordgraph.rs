//! The order dag associated with a database or conjunctive query (§2).
//!
//! Vertices are order constants (or order variables); for each atom `u < v`
//! there is an edge labelled `<`, and for each `u <= v` an edge labelled
//! `<=`. The paper's normalization rules are applied at construction:
//!
//! * **N1** — if `u₁ <= u₂, …, uₙ₋₁ <= uₙ, uₙ <= u₁` all hold, identify
//!   `u₁ … uₙ` (we collapse strongly connected components);
//! * **N2** — delete atoms `u <= u`.
//!
//! A normalized structure is *inconsistent* iff a cycle remains, which
//! happens exactly when some strongly connected component of the raw graph
//! contains a `<` edge (§2). Construction rejects inconsistent input.
//!
//! The module also implements the derived-atom closure (*full* databases),
//! reachability and strict reachability, **minimal** and **minor** vertices,
//! antichains, and the **width** (maximum antichain size) via Dilworth's
//! theorem and bipartite matching.

use crate::atom::OrderRel;
use crate::bitset::BitSet;
use crate::error::{CoreError, Result};

/// A directed edge label: one of the two order relations `<` / `<=`.
///
/// Inequality (`!=`, §7) is *not* an edge label; it is carried separately by
/// [`crate::database::NormalDatabase`].
pub type EdgeRel = OrderRel;

/// A normalized, consistent order dag.
///
/// Vertices are dense indices `0..n`. Between any ordered pair of vertices
/// at most one edge is stored; if both `u < v` and `u <= v` were asserted,
/// only the stronger `<` is kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderGraph {
    n: usize,
    /// Successor adjacency: `succ[u]` lists `(v, rel)` edges `u → v`.
    succ: Vec<Vec<(u32, EdgeRel)>>,
    /// Predecessor adjacency: `pred[v]` lists `(u, rel)` edges `u → v`.
    pred: Vec<Vec<(u32, EdgeRel)>>,
}

/// What an edge insertion actually did to the stored (deduplicated) edge
/// set — the signal the incremental scaffold patch keys on: an
/// [`EdgeInsert::Unchanged`] write needs no invalidation at all, an
/// [`EdgeInsert::Upgraded`] one changes minor-vertex structure but never
/// reachability, and only [`EdgeInsert::New`] can grow closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeInsert {
    /// No edge `u → v` existed before.
    New,
    /// A `<=` edge existed and was strengthened to `<`.
    Upgraded,
    /// The stored edge already subsumed the inserted one.
    Unchanged,
}

/// Result of normalizing a raw edge list: the quotient graph together with
/// the mapping from raw vertices to quotient vertices.
#[derive(Debug, Clone)]
pub struct Normalized {
    /// The quotient dag.
    pub graph: OrderGraph,
    /// `class_of[raw_vertex] = quotient_vertex`.
    pub class_of: Vec<usize>,
    /// Members of each quotient class, in raw-vertex order.
    pub members: Vec<Vec<usize>>,
}

impl OrderGraph {
    /// Builds a graph directly from deduplicated dag edges. Callers must
    /// guarantee acyclicity; [`OrderGraph::normalize`] is the checked path.
    pub fn from_dag_edges(n: usize, edges: &[(usize, usize, EdgeRel)]) -> Result<Self> {
        let mut g = OrderGraph {
            n,
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
        };
        for &(u, v, rel) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            debug_assert!(rel != OrderRel::Ne, "!= is not an order-graph edge");
            g.add_edge_dedup(u, v, rel);
        }
        if g.has_cycle() {
            return Err(CoreError::InconsistentOrder {
                witness: "cycle through a `<` edge".to_string(),
            });
        }
        Ok(g)
    }

    /// Normalizes a raw multigraph of `<` / `<=` edges over `n` vertices:
    /// applies rules N1 and N2, checks consistency, and returns the
    /// quotient dag plus the vertex mapping.
    pub fn normalize(n: usize, edges: &[(usize, usize, EdgeRel)]) -> Result<Normalized> {
        // Tarjan SCC over the full edge set (both labels).
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(u, v, _) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            adj[u].push(v);
        }
        let raw_scc = tarjan_scc(n, &adj);
        let n_classes = raw_scc.iter().copied().max().map_or(0, |m| m + 1);
        // Renumber components in first-seen raw-vertex order, so that when
        // nothing merges the mapping is the identity.
        let mut relabel = vec![usize::MAX; n_classes];
        let mut next = 0usize;
        let scc: Vec<usize> = raw_scc
            .iter()
            .map(|&c| {
                if relabel[c] == usize::MAX {
                    relabel[c] = next;
                    next += 1;
                }
                relabel[c]
            })
            .collect();

        // A `<` edge inside one component (including self loops `u < u`)
        // witnesses inconsistency; `<=` self/internal edges are discharged
        // by N1/N2.
        for &(u, v, rel) in edges {
            if rel == OrderRel::Lt && scc[u] == scc[v] {
                return Err(CoreError::InconsistentOrder {
                    witness: format!("vertices {u} and {v} lie on a cycle through `<`"),
                });
            }
        }

        let mut graph = OrderGraph {
            n: n_classes,
            succ: vec![Vec::new(); n_classes],
            pred: vec![Vec::new(); n_classes],
        };
        for &(u, v, rel) in edges {
            let (cu, cv) = (scc[u], scc[v]);
            if cu != cv {
                graph.add_edge_dedup(cu, cv, rel);
            }
        }
        debug_assert!(!graph.has_cycle(), "SCC quotient must be acyclic");

        let mut members = vec![Vec::new(); n_classes];
        for (raw, &c) in scc.iter().enumerate() {
            members[c].push(raw);
        }
        Ok(Normalized {
            graph,
            class_of: scc,
            members,
        })
    }

    fn add_edge_dedup(&mut self, u: usize, v: usize, rel: EdgeRel) -> EdgeInsert {
        if let Some(slot) = self.succ[u].iter_mut().find(|(w, _)| *w as usize == v) {
            if slot.1 == OrderRel::Le && rel == OrderRel::Lt {
                slot.1 = OrderRel::Lt;
                let back = self.pred[v]
                    .iter_mut()
                    .find(|(w, _)| *w as usize == u)
                    .expect("pred mirror");
                back.1 = OrderRel::Lt;
                return EdgeInsert::Upgraded;
            }
            return EdgeInsert::Unchanged;
        }
        self.succ[u].push((v as u32, rel));
        self.pred[v].push((u as u32, rel));
        EdgeInsert::New
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of stored (deduplicated) edges.
    pub fn edge_count(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Successor edges of `u`.
    pub fn successors(&self, u: usize) -> &[(u32, EdgeRel)] {
        &self.succ[u]
    }

    /// Predecessor edges of `v`.
    pub fn predecessors(&self, v: usize) -> &[(u32, EdgeRel)] {
        &self.pred[v]
    }

    /// All edges `(u, v, rel)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, EdgeRel)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&(v, r)| (u, v as usize, r)))
    }

    fn has_cycle(&self) -> bool {
        // Kahn's algorithm; cycle iff not all vertices are output.
        let mut indeg: Vec<usize> = (0..self.n).map(|v| self.pred[v].len()).collect();
        let mut stack: Vec<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0;
        while let Some(u) = stack.pop() {
            seen += 1;
            for &(v, _) in &self.succ[u] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    stack.push(v as usize);
                }
            }
        }
        seen != self.n
    }

    /// One topological order of the vertices (standard sense).
    pub fn topo_order(&self) -> Vec<usize> {
        let mut indeg: Vec<usize> = (0..self.n).map(|v| self.pred[v].len()).collect();
        let mut stack: Vec<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        let mut out = Vec::with_capacity(self.n);
        while let Some(u) = stack.pop() {
            out.push(u);
            for &(v, _) in &self.succ[u] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    stack.push(v as usize);
                }
            }
        }
        debug_assert_eq!(out.len(), self.n);
        out
    }

    /// Reachability closure: `reach[u]` contains `v` iff there is a
    /// (possibly empty) path `u → v`; `u` itself is included.
    pub fn reachability(&self) -> Vec<BitSet> {
        let order = self.topo_order();
        let mut reach = vec![BitSet::with_capacity(self.n); self.n];
        for &u in order.iter().rev() {
            let mut r = BitSet::with_capacity(self.n);
            r.insert(u);
            for &(v, _) in &self.succ[u] {
                let taken = std::mem::take(&mut reach[v as usize]);
                r.union_with(&taken);
                reach[v as usize] = taken;
            }
            reach[u] = r;
        }
        reach
    }

    /// Strict reachability: `strict[u]` contains `v` iff there is a path
    /// `u → v` passing through at least one `<` edge. Together with
    /// [`OrderGraph::reachability`] this realizes the derived-atom rules of
    /// §2 (*full* closure): `u <= v` derivable iff `v ∈ reach[u]`, `u < v`
    /// derivable iff `v ∈ strict[u]`.
    pub fn strict_reachability(&self) -> Vec<BitSet> {
        let order = self.topo_order();
        let reach = self.reachability();
        let mut strict = vec![BitSet::with_capacity(self.n); self.n];
        for &u in order.iter().rev() {
            let mut s = BitSet::with_capacity(self.n);
            for &(v, rel) in &self.succ[u] {
                match rel {
                    OrderRel::Lt => s.union_with(&reach[v as usize]),
                    OrderRel::Le => s.union_with(&strict[v as usize]),
                    OrderRel::Ne => unreachable!("!= is never an edge"),
                }
            }
            strict[u] = s;
        }
        strict
    }

    /// The *full* closure of the graph: a graph with a `<`-edge `u → v`
    /// whenever a strict path exists and a `<=`-edge whenever only a
    /// non-strict path exists (derived-atom rules 1–2 of §2).
    pub fn full_closure(&self) -> OrderGraph {
        let reach = self.reachability();
        let strict = self.strict_reachability();
        let mut g = OrderGraph {
            n: self.n,
            succ: vec![Vec::new(); self.n],
            pred: vec![Vec::new(); self.n],
        };
        for u in 0..self.n {
            for v in reach[u].iter() {
                if v == u {
                    continue;
                }
                let rel = if strict[u].contains(v) {
                    OrderRel::Lt
                } else {
                    OrderRel::Le
                };
                g.add_edge_dedup(u, v, rel);
            }
            // Strictly reachable vertices not in reach[u] cannot exist.
            debug_assert!(strict[u].is_subset(&reach[u]));
        }
        g
    }

    /// True when `v` is reachable from `u` (inclusive: `u` reaches
    /// itself), by plain DFS — the point query behind the incremental
    /// session patches, which cannot afford the full closure.
    pub fn reaches(&self, u: usize, v: usize) -> bool {
        if u == v {
            return true;
        }
        let mut seen = BitSet::with_capacity(self.n);
        seen.insert(u);
        let mut stack = vec![u];
        while let Some(w) = stack.pop() {
            for &(x, _) in &self.succ[w] {
                let x = x as usize;
                if x == v {
                    return true;
                }
                if seen.insert(x) {
                    stack.push(x);
                }
            }
        }
        false
    }

    /// Inserts an edge the caller has verified keeps the graph acyclic
    /// (no path `v → u` exists), deduplicating parallel edges and keeping
    /// the stronger label — the in-place patch behind
    /// `Session::assert_lt`/`assert_le` on already-known constants.
    /// Reports what changed so callers maintaining derived tables can
    /// scale their invalidation to the actual mutation.
    pub fn insert_dag_edge(&mut self, u: usize, v: usize, rel: EdgeRel) -> EdgeInsert {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        debug_assert!(u != v, "self edges are N1/N2 business, not a patch");
        debug_assert!(rel != OrderRel::Ne, "!= is not an order-graph edge");
        debug_assert!(!self.reaches(v, u), "edge would close a cycle");
        self.add_edge_dedup(u, v, rel)
    }

    /// As [`OrderGraph::insert_dag_edge`], but also patching a caller-held
    /// reachability closure incrementally instead of leaving it stale: for
    /// a new acyclic edge `u → v`, `reach[x] |= reach[v]` for every `x`
    /// whose closure contains `u`. Returns the insertion outcome together
    /// with the set of vertices whose closure actually grew (empty when
    /// `v` was already reachable from `u`, e.g. on a `<=` → `<` upgrade).
    /// `reach` must be the closure of the graph *before* the call (as
    /// produced by [`OrderGraph::reachability`] or earlier patches).
    pub fn insert_dag_edge_tracked(
        &mut self,
        u: usize,
        v: usize,
        rel: EdgeRel,
        reach: &mut [BitSet],
    ) -> (EdgeInsert, BitSet) {
        debug_assert_eq!(reach.len(), self.n, "closure covers the graph");
        let outcome = self.insert_dag_edge(u, v, rel);
        let mut changed = BitSet::with_capacity(self.n);
        if outcome != EdgeInsert::New {
            // The edge (or a stronger one) was already present, so the
            // closure already contains every path through it.
            return (outcome, changed);
        }
        // `reach[v]` itself cannot change (acyclicity: v never reaches u),
        // so one snapshot serves every union.
        let reach_v = reach[v].clone();
        for (x, r) in reach.iter_mut().enumerate() {
            if r.contains(u) && r.union_with_changed(&reach_v) {
                changed.insert(x);
            }
        }
        (outcome, changed)
    }

    /// Repairs a caller-held topological order after inserting the acyclic
    /// edge `u → v`, Pearce–Kelly style: only the *affected region* —
    /// vertices positioned between `pos[v]` and `pos[u]` that reach `u` or
    /// are reached from `v` — is reordered; everything outside keeps its
    /// position. A no-op when the order already agrees (`pos[u] < pos[v]`).
    /// `topo` and `pos` must be mutually inverse (`pos[topo[i]] = i`) and
    /// valid for the graph minus the new edge.
    pub fn repair_topo_after_edge(&self, topo: &mut [u32], pos: &mut [u32], u: usize, v: usize) {
        debug_assert_eq!(topo.len(), self.n);
        debug_assert_eq!(pos.len(), self.n);
        let (pu, pv) = (pos[u] as usize, pos[v] as usize);
        if pu < pv {
            return;
        }
        // Forward frontier: vertices reached from v within the window.
        let mut delta_f: Vec<u32> = Vec::new();
        let mut seen_f = BitSet::with_capacity(self.n);
        seen_f.insert(v);
        let mut stack = vec![v];
        while let Some(w) = stack.pop() {
            delta_f.push(w as u32);
            for &(x, _) in &self.succ[w] {
                let x = x as usize;
                if (pos[x] as usize) <= pu && seen_f.insert(x) {
                    stack.push(x);
                }
            }
        }
        // Backward frontier: vertices reaching u within the window.
        let mut delta_b: Vec<u32> = Vec::new();
        let mut seen_b = BitSet::with_capacity(self.n);
        seen_b.insert(u);
        stack.push(u);
        while let Some(w) = stack.pop() {
            debug_assert!(!seen_f.contains(w), "frontiers meet only on a cycle");
            delta_b.push(w as u32);
            for &(x, _) in &self.pred[w] {
                let x = x as usize;
                if (pos[x] as usize) >= pv && seen_b.insert(x) {
                    stack.push(x);
                }
            }
        }
        // Reassign the union's positions: backward frontier first (it must
        // now precede v's region), each frontier keeping its internal
        // relative order.
        delta_f.sort_unstable_by_key(|&w| pos[w as usize]);
        delta_b.sort_unstable_by_key(|&w| pos[w as usize]);
        let mut slots: Vec<u32> = delta_b
            .iter()
            .chain(delta_f.iter())
            .map(|&w| pos[w as usize])
            .collect();
        slots.sort_unstable();
        for (&w, &slot) in delta_b.iter().chain(delta_f.iter()).zip(slots.iter()) {
            topo[slot as usize] = w;
            pos[w as usize] = slot;
        }
    }

    /// Minimal vertices (no incoming edges) among the `live` set, edges
    /// restricted to live endpoints.
    pub fn minimal_within(&self, live: &BitSet) -> BitSet {
        let mut out = BitSet::with_capacity(self.n);
        for v in live.iter() {
            if self.pred[v]
                .iter()
                .all(|&(u, _)| !live.contains(u as usize))
            {
                out.insert(v);
            }
        }
        out
    }

    /// Minimal vertices of the whole graph.
    pub fn minimal_vertices(&self) -> BitSet {
        self.minimal_within(&BitSet::full(self.n))
    }

    /// Minor vertices among `live` (§2): `v` is **minor** iff no ascending
    /// path *within the live subgraph* that ends at `v` passes through a
    /// `<` edge. Equivalently: all live in-edges of `v` are `<=` edges from
    /// minor vertices.
    pub fn minor_within(&self, live: &BitSet) -> BitSet {
        let topo: Vec<u32> = self.topo_order().iter().map(|&v| v as u32).collect();
        self.minor_within_order(live, &topo)
    }

    /// As [`OrderGraph::minor_within`], but reusing a precomputed
    /// topological order instead of re-running Kahn's algorithm — the form
    /// the Theorem 5.3 scaffold calls once per `(S, T)` pair.
    pub fn minor_within_order(&self, live: &BitSet, topo: &[u32]) -> BitSet {
        debug_assert_eq!(topo.len(), self.n, "topological order covers the graph");
        let mut minor = BitSet::with_capacity(self.n);
        // Process in topological order restricted to live vertices.
        for &v in topo {
            let v = v as usize;
            if !live.contains(v) {
                continue;
            }
            let ok = self.pred[v].iter().all(|&(u, rel)| {
                !live.contains(u as usize) || (rel == OrderRel::Le && minor.contains(u as usize))
            });
            if ok {
                minor.insert(v);
            }
        }
        minor
    }

    /// Minor vertices of the whole graph.
    pub fn minor_vertices(&self) -> BitSet {
        self.minor_within(&BitSet::full(self.n))
    }

    /// Tests whether `set` is an antichain: no path between two distinct
    /// members.
    pub fn is_antichain(&self, set: &BitSet) -> bool {
        let reach = self.reachability();
        for u in set.iter() {
            for v in set.iter() {
                if u != v && reach[u].contains(v) {
                    return false;
                }
            }
        }
        true
    }

    /// The **width** of the dag: the maximum cardinality of an antichain.
    ///
    /// By Dilworth's theorem this equals the minimum number of chains
    /// covering the poset, computed as `n - M` where `M` is a maximum
    /// matching of the bipartite graph whose edges are the pairs of the
    /// *reachability closure* (König–Fulkerson construction).
    pub fn width(&self) -> usize {
        if self.n == 0 {
            return 0;
        }
        let reach = self.reachability();
        // Bipartite graph: left copy u — right copy v for u <R v, u != v.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for u in 0..self.n {
            for v in reach[u].iter() {
                if v != u {
                    adj[u].push(v);
                }
            }
        }
        let matching = max_bipartite_matching(self.n, self.n, &adj);
        self.n - matching
    }

    /// The set of vertices reachable from any vertex of `from` (inclusive),
    /// i.e. the vertex set of the paper's `D ↾ S`.
    pub fn up_set(&self, from: &BitSet) -> BitSet {
        let mut out = from.clone();
        let mut stack: Vec<usize> = from.iter().collect();
        while let Some(u) = stack.pop() {
            for &(v, _) in &self.succ[u] {
                if out.insert(v as usize) {
                    stack.push(v as usize);
                }
            }
        }
        out
    }

    /// Enumerates every antichain (including the empty one) of size at most
    /// `max_size`, invoking `f` on each. Intended for the bounded-width
    /// engines where `max_size = k` is small.
    pub fn antichains_up_to(&self, max_size: usize, mut f: impl FnMut(&[usize])) {
        let reach = self.reachability();
        let mut current: Vec<usize> = Vec::new();
        fn go(
            n: usize,
            reach: &[BitSet],
            max: usize,
            start: usize,
            current: &mut Vec<usize>,
            f: &mut impl FnMut(&[usize]),
        ) {
            f(current);
            if current.len() == max {
                return;
            }
            for v in start..n {
                let incomparable = current
                    .iter()
                    .all(|&u| !reach[u].contains(v) && !reach[v].contains(u));
                if incomparable {
                    current.push(v);
                    go(n, reach, max, v + 1, current, f);
                    current.pop();
                }
            }
        }
        go(self.n, &reach, max_size, 0, &mut current, &mut f);
    }

    /// Restricts the graph to the vertices in `keep`, renumbering vertices
    /// densely in increasing old-index order. Returns the restricted graph
    /// and the old-index list (`new → old`).
    pub fn restrict(&self, keep: &BitSet) -> (OrderGraph, Vec<usize>) {
        let old_of: Vec<usize> = keep.iter().collect();
        let mut new_of = vec![usize::MAX; self.n];
        for (new, &old) in old_of.iter().enumerate() {
            new_of[old] = new;
        }
        let mut g = OrderGraph {
            n: old_of.len(),
            succ: vec![Vec::new(); old_of.len()],
            pred: vec![Vec::new(); old_of.len()],
        };
        for (u, v, rel) in self.edges() {
            if keep.contains(u) && keep.contains(v) {
                g.add_edge_dedup(new_of[u], new_of[v], rel);
            }
        }
        (g, old_of)
    }
}

/// Iterative Tarjan strongly-connected-components; returns the component id
/// of each vertex. Component ids are assigned in reverse topological order
/// of the condensation; only the partition matters to callers.
fn tarjan_scc(n: usize, adj: &[Vec<usize>]) -> Vec<usize> {
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![UNSEEN; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Explicit DFS stack: (vertex, next child position).
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        call.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == UNSEEN {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// Maximum bipartite matching (Kuhn's augmenting paths). `adj[l]` lists the
/// right vertices adjacent to left vertex `l`.
fn max_bipartite_matching(n_left: usize, n_right: usize, adj: &[Vec<usize>]) -> usize {
    let mut match_right: Vec<Option<usize>> = vec![None; n_right];
    let mut matched = 0usize;

    fn try_kuhn(
        l: usize,
        adj: &[Vec<usize>],
        visited: &mut [bool],
        match_right: &mut [Option<usize>],
    ) -> bool {
        for &r in &adj[l] {
            if visited[r] {
                continue;
            }
            visited[r] = true;
            if match_right[r].is_none()
                || try_kuhn(match_right[r].unwrap(), adj, visited, match_right)
            {
                match_right[r] = Some(l);
                return true;
            }
        }
        false
    }

    let mut visited = vec![false; n_right];
    for l in 0..n_left {
        visited.iter_mut().for_each(|v| *v = false);
        if try_kuhn(l, adj, &mut visited, &mut match_right) {
            matched += 1;
        }
    }
    matched
}

#[cfg(test)]
mod tests {
    use super::*;
    use OrderRel::{Le, Lt};

    fn norm(n: usize, edges: &[(usize, usize, EdgeRel)]) -> Normalized {
        OrderGraph::normalize(n, edges).unwrap()
    }

    #[test]
    fn le_cycle_collapses_n1() {
        // u <= v <= w <= u: all identified.
        let nz = norm(3, &[(0, 1, Le), (1, 2, Le), (2, 0, Le)]);
        assert_eq!(nz.graph.len(), 1);
        assert_eq!(nz.class_of[0], nz.class_of[1]);
        assert_eq!(nz.class_of[1], nz.class_of[2]);
        assert_eq!(nz.graph.edge_count(), 0); // N2 removed the self loop
    }

    #[test]
    fn lt_cycle_is_inconsistent() {
        let e = OrderGraph::normalize(2, &[(0, 1, Lt), (1, 0, Le)]).unwrap_err();
        assert!(matches!(e, CoreError::InconsistentOrder { .. }));
        let e = OrderGraph::normalize(1, &[(0, 0, Lt)]).unwrap_err();
        assert!(matches!(e, CoreError::InconsistentOrder { .. }));
    }

    #[test]
    fn self_le_removed_n2() {
        let nz = norm(1, &[(0, 0, Le)]);
        assert_eq!(nz.graph.len(), 1);
        assert_eq!(nz.graph.edge_count(), 0);
    }

    #[test]
    fn parallel_edges_keep_strongest() {
        let nz = norm(2, &[(0, 1, Le), (0, 1, Lt), (0, 1, Le)]);
        assert_eq!(nz.graph.edge_count(), 1);
        assert_eq!(nz.graph.edges().next().unwrap().2, Lt);
    }

    #[test]
    fn example_2_4_minors() {
        // u < v < w, u <= t <= w  (paper Example 2.4: minors are u and t).
        // vertices: u=0, v=1, w=2, t=3
        let nz = norm(4, &[(0, 1, Lt), (1, 2, Lt), (0, 3, Le), (3, 2, Le)]);
        let minors = nz.graph.minor_vertices();
        assert_eq!(minors.iter().collect::<Vec<_>>(), vec![0, 3]);
        let minimal = nz.graph.minimal_vertices();
        assert_eq!(minimal.iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn reachability_and_strictness() {
        // 0 <= 1 < 2, 0 <= 3
        let nz = norm(4, &[(0, 1, Le), (1, 2, Lt), (0, 3, Le)]);
        let reach = nz.graph.reachability();
        assert!(reach[0].contains(2));
        assert!(reach[0].contains(3));
        assert!(!reach[3].contains(2));
        let strict = nz.graph.strict_reachability();
        assert!(strict[0].contains(2)); // through the `<` edge
        assert!(!strict[0].contains(1)); // only `<=` so far
        assert!(!strict[0].contains(3));
        assert!(strict[1].contains(2));
    }

    #[test]
    fn full_closure_adds_derived_atoms() {
        // The paper's example: u <= v, v <= w, plus derived u <= w.
        let nz = norm(3, &[(0, 1, Le), (1, 2, Le)]);
        let full = nz.graph.full_closure();
        assert_eq!(full.edge_count(), 3);
        assert!(full.edges().any(|(u, v, r)| (u, v, r) == (0, 2, Le)));
        // u < v, v <= w derives u < w.
        let nz = norm(3, &[(0, 1, Lt), (1, 2, Le)]);
        let full = nz.graph.full_closure();
        assert!(full.edges().any(|(u, v, r)| (u, v, r) == (0, 2, Lt)));
    }

    #[test]
    fn width_of_chains_and_antichains() {
        // A chain has width 1.
        let nz = norm(4, &[(0, 1, Lt), (1, 2, Lt), (2, 3, Lt)]);
        assert_eq!(nz.graph.width(), 1);
        // Four isolated vertices: width 4.
        let nz = norm(4, &[]);
        assert_eq!(nz.graph.width(), 4);
        // Two parallel chains (the "two observers" example): width 2.
        let nz = norm(4, &[(0, 1, Lt), (2, 3, Lt)]);
        assert_eq!(nz.graph.width(), 2);
        // Diamond 0 < {1,2} < 3: width 2.
        let nz = norm(4, &[(0, 1, Lt), (0, 2, Lt), (1, 3, Lt), (2, 3, Lt)]);
        assert_eq!(nz.graph.width(), 2);
        assert_eq!(OrderGraph::from_dag_edges(0, &[]).unwrap().width(), 0);
    }

    #[test]
    fn width_counts_paths_not_just_edges() {
        // 0 -> 1 -> 2 plus isolated 3: the antichain {0,2} is NOT one
        // (path exists); max antichain is {0,3} or {1,3} etc. => width 2.
        let nz = norm(4, &[(0, 1, Le), (1, 2, Le)]);
        assert_eq!(nz.graph.width(), 2);
        assert!(nz.graph.is_antichain(&[0usize, 3].into_iter().collect()));
        assert!(!nz.graph.is_antichain(&[0usize, 2].into_iter().collect()));
    }

    #[test]
    fn up_set_and_restrict() {
        let nz = norm(4, &[(0, 1, Lt), (1, 2, Le), (3, 2, Lt)]);
        let up = nz.graph.up_set(&[0usize].into_iter().collect());
        assert_eq!(up.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        let (sub, old_of) = nz.graph.restrict(&up);
        assert_eq!(sub.len(), 3);
        assert_eq!(old_of, vec![0, 1, 2]);
        assert_eq!(sub.edge_count(), 2);
    }

    #[test]
    fn antichain_enumeration_bounded() {
        let nz = norm(3, &[(0, 1, Lt)]);
        let mut count = 0;
        nz.graph.antichains_up_to(2, |_| count += 1);
        // antichains: {}, {0}, {1}, {2}, {0,2}, {1,2}
        assert_eq!(count, 6);
    }

    #[test]
    fn reaches_and_insert_dag_edge() {
        let nz = norm(4, &[(0, 1, Le), (1, 2, Lt)]);
        let mut g = nz.graph;
        assert!(g.reaches(0, 2));
        assert!(g.reaches(1, 1));
        assert!(!g.reaches(2, 0));
        assert!(!g.reaches(0, 3));
        g.insert_dag_edge(2, 3, Lt);
        assert!(g.reaches(0, 3));
        assert_eq!(g.edge_count(), 3);
        // Parallel insert upgrades <= to < and stays deduplicated.
        g.insert_dag_edge(0, 1, Lt);
        assert_eq!(g.edge_count(), 3);
        assert!(g.edges().any(|(u, v, r)| (u, v, r) == (0, 1, Lt)));
        assert!(g.predecessors(1).iter().any(|&(u, r)| (u, r) == (0, Lt)));
    }

    #[test]
    fn tracked_insert_patches_closure_incrementally() {
        // 0 -> 1, 2 -> 3; adding 1 -> 2 joins the chains.
        let nz = norm(4, &[(0, 1, Le), (2, 3, Lt)]);
        let mut g = nz.graph;
        let mut reach = g.reachability();
        let (outcome, changed) = g.insert_dag_edge_tracked(1, 2, Lt, &mut reach);
        assert_eq!(outcome, EdgeInsert::New);
        // 0 and 1 now reach {2, 3}; 2 and 3 are untouched.
        assert_eq!(changed.iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(reach, g.reachability(), "patched closure == fresh closure");
        // Upgrading 0 -> 1 from <= to < changes no reachability.
        let (outcome, changed) = g.insert_dag_edge_tracked(0, 1, Lt, &mut reach);
        assert_eq!(outcome, EdgeInsert::Upgraded);
        assert!(changed.is_empty());
        // Re-inserting the identical edge is fully unchanged.
        let (outcome, changed) = g.insert_dag_edge_tracked(0, 1, Lt, &mut reach);
        assert_eq!(outcome, EdgeInsert::Unchanged);
        assert!(changed.is_empty());
        assert_eq!(reach, g.reachability());
        // A shortcut edge whose target was already reachable: New edge,
        // but the closure (hence the changed set) is untouched.
        let (outcome, changed) = g.insert_dag_edge_tracked(0, 3, Le, &mut reach);
        assert_eq!(outcome, EdgeInsert::New);
        assert!(changed.is_empty());
        assert_eq!(reach, g.reachability());
    }

    #[test]
    fn pearce_kelly_repair_is_local_and_valid() {
        // Two chains 0->1->2 and 3->4->5 with an interleaved initial order
        // that puts the second chain first.
        let nz = norm(6, &[(0, 1, Lt), (1, 2, Lt), (3, 4, Lt), (4, 5, Le)]);
        let mut g = nz.graph;
        let mut topo: Vec<u32> = vec![3, 4, 5, 0, 1, 2];
        let mut pos: Vec<u32> = vec![3, 4, 5, 0, 1, 2];
        // 2 -> 3 contradicts the current order (pos[2]=5 > pos[3]=0):
        // the whole window is affected here, but positions outside stay.
        g.insert_dag_edge(2, 3, Lt);
        g.repair_topo_after_edge(&mut topo, &mut pos, 2, 3);
        for (u, v, _) in g.edges() {
            assert!(pos[u] < pos[v], "edge {u}->{v} violates repaired order");
        }
        for (i, &w) in topo.iter().enumerate() {
            assert_eq!(pos[w as usize] as usize, i, "pos is the inverse of topo");
        }
        // An agreeing edge is a no-op on the order.
        let before = topo.clone();
        g.insert_dag_edge(0, 5, Le);
        g.repair_topo_after_edge(&mut topo, &mut pos, 0, 5);
        assert_eq!(topo, before);
        // Unaffected vertices keep their exact positions: add 6th/7th
        // isolated vertices around a small conflict.
        let nz = norm(5, &[(0, 1, Lt), (2, 3, Lt)]);
        let mut g = nz.graph;
        let mut topo: Vec<u32> = vec![2, 3, 4, 0, 1];
        let mut pos: Vec<u32> = vec![3, 4, 0, 1, 2];
        g.insert_dag_edge(1, 2, Lt);
        g.repair_topo_after_edge(&mut topo, &mut pos, 1, 2);
        for (u, v, _) in g.edges() {
            assert!(pos[u] < pos[v]);
        }
        // Vertex 4 (isolated, inside the window) is not in either
        // frontier, so its position survives the repair.
        assert_eq!(pos[4], 2);
    }

    #[test]
    fn minor_within_subgraph() {
        // 0 < 1, 2 <= 1. Whole graph: minors are 0 and 2 (1 has a `<`
        // in-edge). Restricted to {1, 2}: the `<` edge leaves the live set,
        // so 1 becomes minor (via `<=` from minor 2).
        let nz = norm(3, &[(0, 1, Lt), (2, 1, Le)]);
        let whole = nz.graph.minor_vertices();
        assert_eq!(whole.iter().collect::<Vec<_>>(), vec![0, 2]);
        let live: BitSet = [1usize, 2].into_iter().collect();
        let minors = nz.graph.minor_within(&live);
        assert_eq!(minors.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn big_le_component_with_external_edges() {
        // {0,1} merge; 2 sits strictly above the merged class.
        let nz = norm(3, &[(0, 1, Le), (1, 0, Le), (1, 2, Lt)]);
        assert_eq!(nz.graph.len(), 2);
        let merged = nz.class_of[0];
        assert_eq!(nz.class_of[1], merged);
        let other = nz.class_of[2];
        assert_ne!(merged, other);
        assert_eq!(nz.members[merged].len(), 2);
        assert!(nz
            .graph
            .edges()
            .any(|(u, v, r)| u == merged && v == other && r == Lt));
    }
}
