//! Sessions: a [`Database`] plus lazily-computed, mutation-invalidated
//! derived views.
//!
//! Every entailment algorithm of the paper consumes not the raw database
//! but one of its derived forms: the N1/N2-normalized [`NormalDatabase`],
//! the labelled-dag [`MonadicDatabase`] (§4), and the per-object predicate
//! profiles that decide object parts of queries. Re-deriving those on
//! every query is pure waste under repeated-query traffic, so a
//! [`Session`] owns the database and caches each view on first use:
//!
//! * [`Session::normal`] — the normalized database (rules N1/N2,
//!   consistency check, constant → vertex mapping);
//! * [`Session::monadic`] — the labelled dag, when every stored predicate
//!   is monadic over the order sort;
//! * [`Session::object_profiles`] — for each object constant, the set of
//!   monadic predicates asserted of it (evaluates `ObjectPart`s);
//! * [`Session::disjunctive_scaffold`] — the
//!   [`DisjunctiveScaffold`](crate::scaffold::DisjunctiveScaffold): the
//!   Theorem 5.3 search tables that depend on the database but not the
//!   query (reachability closure, topological order, the `min(D)`
//!   antichain, and the growing interned-antichain / `D(S,T)` pair
//!   tables). Repeated disjunctive queries against one session reuse the
//!   pairs explored by earlier queries instead of re-deriving them.
//!
//! ## The invalidation contract
//!
//! Mutations go through the session ([`Session::push_proper`],
//! [`Session::assert_lt`], …) and invalidate exactly what they must —
//! including the scaffold layer, which survives every in-place write:
//!
//! * **proper fact over known order constants** — the normalized and
//!   monadic views are patched in place, and the scaffold's cached
//!   `D(S,T)` label unions are patched too
//!   ([`DisjunctiveScaffold::patch_label_insert`]): nothing is dropped;
//! * **acyclic order edge over known, distinct vertices** — the cached
//!   graphs gain the edge in place, the scaffold's reachability closure
//!   is updated incrementally, its topological order repaired locally
//!   (Pearce–Kelly), and only the `(S, T)` pairs whose up-sets contain
//!   the edge source are evicted
//!   ([`DisjunctiveScaffold::patch_order_edge`]): the scaffold object
//!   itself — closure, topo order, antichain arena, and every unaffected
//!   pair — stays warm;
//! * **`!=` over known vertices** — the constraint is appended to the
//!   cached views and the scaffold's memoized blocked-commit bits are
//!   marked stale for lazy recomputation
//!   ([`DisjunctiveScaffold::note_ne_mutation`]): nothing is dropped;
//! * **everything else** — a fresh order constant, an n-ary fact (the
//!   monadic view no longer applies), a `<=` edge closing a cycle (N1
//!   merges vertices), a `<` edge closing a cycle (inconsistency), or a
//!   bulk [`Session::extend`]/[`Session::assert_chain`] — drops the
//!   affected caches for lazy recomputation. These are the *only* cases
//!   that still lose the scaffold.
//!
//! The [`Session::epoch`] counter increments on every mutation, so
//! external caches keyed on a session can detect staleness.
//! [`Session::with_scaffold_rebuild_on_write`] restores the historical
//! drop-on-write behavior (the benchmark baseline), and
//! [`Session::with_max_pairs`] bounds the scaffold's pair table for
//! long-lived sessions.
//!
//! Caches live in [`std::sync::OnceLock`]s: a `&Session` can be shared
//! across threads serving the same (read-only) workload.
//!
//! ## Sharing rules (MVCC snapshots)
//!
//! Two clone operations with opposite contracts:
//!
//! * [`Clone`] starts **cold** — it exists for rollback snapshots and
//!   other clones that may be mutated independently, so the two sessions
//!   must not share cache state;
//! * [`Session::freeze`] is **warm** — it exists for immutable read
//!   snapshots (the server's MVCC publication path): cached views are
//!   carried over and the scaffold is *shared* through an `Arc` rather
//!   than deep-copied or rebuilt.
//!
//! The scaffold is the one cached view that later queries mutate (its
//! pair table grows under its own mutex — fine to share) **and** that
//! writes patch in place (not fine to share). The write paths therefore
//! go through a copy-on-write gate: if the cached `Arc` is shared with
//! frozen snapshots, the session first splits off a private copy
//! ([`DisjunctiveScaffold::cow_clone`] — `try_lock` on the pair table,
//! so a reader's in-flight search can never block the writer) and
//! patches that. Snapshots keep the exact tables they were published
//! with, forever.
//!
//! A session must be used with a single [`Vocabulary`]: the first call to
//! [`Session::monadic`] fixes the vocabulary whose signatures the cached
//! view was built against.

use crate::atom::{OrderRel, ProperAtom, Term};
use crate::bitset::PredSet;
use crate::database::{Database, NormalDatabase};
use crate::error::Result;
use crate::fxhash::FxHashMap;
use crate::monadic::MonadicDatabase;
use crate::ordgraph::OrderGraph;
use crate::scaffold::{DisjunctiveScaffold, SubScaffold};
use crate::sym::{ObjSym, OrdSym, PredSym, Vocabulary};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A snapshot of a session's maintenance counters — the observability
/// surface behind the server's `STATS` reply and the read-write bench
/// assertions. All counters start at zero on a fresh (or cloned)
/// session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Mutation counter (same value as [`Session::epoch`]).
    pub epoch: u64,
    /// How many times the disjunctive scaffold was built from scratch.
    /// `1` on a warm session; every increment beyond the first means a
    /// write dropped the scaffold and a later read paid a full rebuild.
    pub scaffold_builds: u64,
    /// Writes absorbed by patching the cached views in place (label
    /// inserts, acyclic order edges, known-vertex `!=`) — the
    /// incremental-maintenance fast path.
    pub in_place_patches: u64,
    /// Writes that dropped a *warm* cache for lazy recomputation (fresh
    /// constants, n-ary facts, cycle-closing edges, bulk mutations).
    /// Cold writes — nothing computed yet, so nothing lost — are not
    /// counted.
    pub cache_drops: u64,
    /// Pairs evicted from the scaffold's memo table, by the
    /// [`Session::with_max_pairs`] LRU bound or by selective order-edge
    /// invalidation (0 while the scaffold is cold or its table is held
    /// by a concurrent search).
    pub pair_evictions: u64,
    /// Concurrent searches that lost the shared pair-table lock race
    /// and ran on a private table (see
    /// [`DisjunctiveScaffold::contention_fallbacks`]).
    pub contention_fallbacks: u64,
}

impl SessionStats {
    /// Scaffold rebuilds beyond the initial build: nonzero exactly when
    /// some write forced a drop-and-rebuild cycle.
    pub fn scaffold_rebuilds(&self) -> u64 {
        self.scaffold_builds.saturating_sub(1)
    }
}

/// Three-way answer to "do these two sessions share this view?" —
/// returned by [`Session::shares_scaffold_with`] and
/// [`Session::sharing_with`]. A plain `bool` cannot distinguish "warm
/// but distinct" from "nothing computed", which made sharing assertions
/// pass vacuously when warmup silently failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharing {
    /// Both sides are warm and hold the same object (`Arc::ptr_eq`).
    Shared,
    /// Both sides are warm but hold distinct objects (a write unshared).
    Unshared,
    /// At least one side never computed the view — the comparison is
    /// vacuous, and assertions built on it prove nothing.
    Cold,
}

impl Sharing {
    fn of<T>(a: Option<&Arc<T>>, b: Option<&Arc<T>>) -> Sharing {
        match (a, b) {
            (Some(a), Some(b)) if Arc::ptr_eq(a, b) => Sharing::Shared,
            (Some(_), Some(_)) => Sharing::Unshared,
            _ => Sharing::Cold,
        }
    }

    /// True exactly for [`Sharing::Shared`].
    pub fn is_shared(self) -> bool {
        self == Sharing::Shared
    }
}

/// Per-view sharing answers between a session and (typically) one of its
/// frozen snapshots — see [`Session::sharing_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharingReport {
    /// The normalized view ([`Session::normal`]).
    pub normal: Sharing,
    /// The monadic labelled-dag view ([`Session::monadic`]).
    pub monadic: Sharing,
    /// The object-profile table ([`Session::object_profiles`]).
    pub profiles: Sharing,
    /// The disjunctive scaffold ([`Session::disjunctive_scaffold`]).
    pub scaffold: Sharing,
    /// The order dag *inside* the normalized view: stays shared across
    /// label/`!=`/fact writes even when the views themselves unshare.
    pub order_graph: Sharing,
    /// The constant→vertex table inside the normalized view: stays
    /// shared across every non-structural write.
    pub vertex_map: Sharing,
}

/// An empty dag, used to momentarily retire the monadic view's dag alias
/// while the order-edge patch runs `Arc::make_mut` on the normal side
/// (see `Session::try_patch_order_edge`).
fn placeholder_graph() -> OrderGraph {
    OrderGraph::from_dag_edges(0, &[]).expect("the empty dag is consistent")
}

/// Per-object predicate profiles, derived from the definite part of the
/// database (§4: object parts of queries are decided against these).
#[derive(Debug, Clone, Default)]
struct ObjectProfiles {
    index_of: FxHashMap<ObjSym, usize>,
    sets: Vec<PredSet>,
}

impl ObjectProfiles {
    fn from_normal(nd: &NormalDatabase) -> Self {
        let mut profiles = ObjectProfiles::default();
        for a in nd.definite_atoms() {
            if let (Some(Term::Obj(o)), 1) = (a.args.first(), a.args.len()) {
                profiles.insert(a.pred, *o);
            }
        }
        profiles
    }

    fn insert(&mut self, pred: PredSym, obj: ObjSym) {
        let n = self.sets.len();
        let i = *self.index_of.entry(obj).or_insert(n);
        if i == self.sets.len() {
            self.sets.push(PredSet::new());
        }
        self.sets[i].insert(pred);
    }
}

/// Computes the per-object predicate profiles of a normalized database's
/// definite part — the structure [`Session::object_profiles`] caches.
/// One-shot callers (the unprepared compatibility path) use this
/// directly.
pub fn object_profiles_of(nd: &NormalDatabase) -> Vec<PredSet> {
    ObjectProfiles::from_normal(nd).sets
}

/// Fingerprint of the vocabulary prefix a monadic view was built
/// against: predicate count plus a hash of names and signatures. Later
/// calls may use a *grown* vocabulary (new predicates cannot occur in
/// the already-stored facts) but never a different one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct VocStamp {
    preds: usize,
    hash: u64,
}

impl VocStamp {
    fn of(voc: &Vocabulary) -> Self {
        VocStamp {
            preds: voc.pred_count(),
            hash: Self::hash_prefix(voc, voc.pred_count()),
        }
    }

    fn hash_prefix(voc: &Vocabulary, preds: usize) -> u64 {
        // FNV-1a over predicate names and argument sorts.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for i in 0..preds {
            let p = PredSym::from_index(i);
            for b in voc.pred_name(p).bytes() {
                eat(b);
            }
            eat(0xFF);
            for &s in &voc.signature(p).arg_sorts {
                eat(s as u8);
            }
            eat(0xFE);
        }
        h
    }

    /// Re-hashes the stamped prefix on every call: vocabularies are tiny
    /// (tens of bytes of predicate names), so this is nanoseconds against
    /// the microseconds of an evaluation, and anything cheaper would have
    /// to assume two distinct vocabularies with equal predicate counts
    /// are the same — the exact silent-wrong-answer case the stamp exists
    /// to catch.
    fn accepts(&self, voc: &Vocabulary) -> bool {
        voc.pred_count() >= self.preds && Self::hash_prefix(voc, self.preds) == self.hash
    }
}

/// A database plus its cached derived views. See the module docs.
#[derive(Debug, Default)]
pub struct Session {
    db: Database,
    epoch: u64,
    /// Bound on the scaffold's memoized pair table (`None` = unbounded).
    max_pairs: Option<usize>,
    /// When set, writes drop the scaffold instead of patching it — the
    /// pre-incremental behavior, kept as the benchmark baseline.
    rebuild_scaffold_on_write: bool,
    /// Every cached view sits behind an `Arc`: [`Session::freeze`] clones
    /// the `OnceLock`s, which is one reference-count bump per warm view,
    /// and the write paths unshare only the view they touch
    /// (`Arc::make_mut`) — the inner components (the
    /// [`crate::chunked::ChunkedLog`] fact store, the shared order dag,
    /// the vertex tables) are themselves
    /// structurally shared, so even that unsharing is O(changed).
    normal: OnceLock<Result<Arc<NormalDatabase>>>,
    monadic: OnceLock<Result<Arc<MonadicDatabase>>>,
    voc_stamp: OnceLock<VocStamp>,
    profiles: OnceLock<Arc<ObjectProfiles>>,
    /// The scaffold is held through an `Arc` so a frozen snapshot
    /// ([`Session::freeze`]) shares it instead of rebuilding; mutation
    /// paths split off a private copy first when it is shared (see
    /// [`Session::scaffold_mut`]).
    scaffold: OnceLock<Arc<DisjunctiveScaffold>>,
    /// Lifetime count of scaffold builds (see [`SessionStats`]).
    scaffold_builds: AtomicU64,
    /// Lifetime count of in-place write patches (see [`SessionStats`]).
    in_place_patches: AtomicU64,
    /// Lifetime count of cache-dropping writes (see [`SessionStats`]).
    cache_drops: AtomicU64,
}

impl Clone for Session {
    fn clone(&self) -> Self {
        // Cached views are cheap to rebuild relative to cloning; start the
        // clone cold so the two sessions never share stale state.
        Session {
            db: self.db.clone(),
            epoch: self.epoch,
            max_pairs: self.max_pairs,
            rebuild_scaffold_on_write: self.rebuild_scaffold_on_write,
            ..Session::default()
        }
    }
}

impl From<Database> for Session {
    fn from(db: Database) -> Self {
        Session::new(db)
    }
}

impl Session {
    /// Wraps a database in a fresh (cold-cache) session.
    pub fn new(db: Database) -> Self {
        Session {
            db,
            ..Session::default()
        }
    }

    /// Bounds the scaffold's shared `(S, T)` pair table to `cap` memoized
    /// entries (builder-style; default unbounded). Cold entries are
    /// evicted LRU-ish between search runs and recompute transparently on
    /// next use — the safety knob for long-lived sessions answering many
    /// *distinct* queries over wide databases.
    pub fn with_max_pairs(mut self, cap: usize) -> Self {
        self.max_pairs = Some(cap);
        // An already-built scaffold was configured unbounded; rebuild it
        // lazily under the new bound.
        self.scaffold.take();
        self
    }

    /// Restores the pre-incremental invalidation behavior: every write
    /// that touches order atoms or labels drops the scaffold for a full
    /// rebuild instead of patching it. Exists so the `read-write` bench
    /// can measure incremental maintenance against drop-and-rebuild on
    /// identical workloads; not useful in production.
    pub fn with_scaffold_rebuild_on_write(mut self, rebuild: bool) -> Self {
        self.rebuild_scaffold_on_write = rebuild;
        self
    }

    /// The underlying database (read-only; mutate through the session).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Unwraps back into the database, dropping the caches.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Mutation counter: increments on every insertion.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of atoms (`|D|`).
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// True when the database has no atoms.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    // ------------------------------------------------------------------
    // Cached views
    // ------------------------------------------------------------------

    /// The normalized database, computing and caching it on first use.
    pub fn normal(&self) -> Result<&NormalDatabase> {
        match self
            .normal
            .get_or_init(|| self.db.normalize().map(Arc::new))
        {
            Ok(nd) => Ok(&**nd),
            Err(e) => Err(e.clone()),
        }
    }

    /// The labelled-dag monadic view, computing and caching it on first
    /// use. Errors if normalization fails, a stored predicate is not
    /// monadic, or `voc` is not the vocabulary (or a grown version of
    /// the vocabulary) the view was first built against.
    pub fn monadic(&self, voc: &Vocabulary) -> Result<&MonadicDatabase> {
        let nd = self.normal()?;
        let stamp = self.voc_stamp.get_or_init(|| VocStamp::of(voc));
        if !stamp.accepts(voc) {
            return Err(crate::error::CoreError::VocabularyMismatch);
        }
        match self
            .monadic
            .get_or_init(|| MonadicDatabase::from_normal(voc, nd).map(Arc::new))
        {
            Ok(mdb) => Ok(&**mdb),
            Err(e) => Err(e.clone()),
        }
    }

    /// The Theorem 5.3 search scaffold of the monadic view, computing and
    /// caching it on first use: reachability closure, topological order,
    /// the initial antichain, and the shared interned-antichain `D(S,T)`
    /// pair tables that successive disjunctive searches grow in place.
    /// Errors exactly when [`Session::monadic`] does.
    pub fn disjunctive_scaffold(&self, voc: &Vocabulary) -> Result<&DisjunctiveScaffold> {
        let mdb = self.monadic(voc)?;
        Ok(self.scaffold.get_or_init(|| {
            self.scaffold_builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(DisjunctiveScaffold::new(mdb).with_max_pairs(self.max_pairs))
        }))
    }

    /// Unique (mutable) access to the warm scaffold, if any — the
    /// copy-on-write gate of the snapshot-sharing story. When the cached
    /// `Arc` is also held by frozen snapshots, the scaffold is cloned
    /// ([`DisjunctiveScaffold::cow_clone`]) so the snapshots keep their
    /// immutable view while this session patches its own copy; when the
    /// session is the sole owner, this is plain in-place access.
    fn scaffold_mut(&mut self) -> Option<&mut DisjunctiveScaffold> {
        let arc = self.scaffold.get_mut()?;
        if Arc::get_mut(arc).is_none() {
            *arc = Arc::new(arc.cow_clone());
        }
        Some(Arc::get_mut(arc).expect("freshly cloned Arc is unique"))
    }

    /// The §7 sub-scaffold of the session's database: the cached
    /// disjunctive scaffold projected onto the region of models that
    /// separate the database's `!=` pairs (the identity view for
    /// `[<,<=]` databases). The view is cached by construction — it is
    /// two words, while the database-sized search state (reachability,
    /// arena, `D(S,T)` and blocked-commit tables) lives in the shared
    /// parent scaffold — so every expansion of a prepared `!=` query
    /// evaluated against this session hits it warm. Follows the same
    /// mutation-invalidation discipline as
    /// [`Session::disjunctive_scaffold`].
    pub fn sub_scaffold(&self, voc: &Vocabulary) -> Result<SubScaffold<'_>> {
        let mdb = self.monadic(voc)?;
        Ok(SubScaffold::project(self.disjunctive_scaffold(voc)?, mdb))
    }

    /// Predicate profiles of the object constants in the definite part of
    /// the database, computing and caching them on first use.
    pub fn object_profiles(&self) -> Result<&[PredSet]> {
        let nd = self.normal()?;
        Ok(&self
            .profiles
            .get_or_init(|| Arc::new(ObjectProfiles::from_normal(nd)))
            .sets)
    }

    /// True when [`Session::normal`] is already cached (test/observability
    /// hook: a hot session performs no re-normalization).
    pub fn is_warm(&self) -> bool {
        matches!(self.normal.get(), Some(Ok(_)))
    }

    /// A **warm** clone for snapshot publication: where [`Clone`]
    /// deliberately starts cold (two live sessions must never share
    /// cache state they both mutate), `freeze` is for clones that will
    /// never be mutated again — MVCC read snapshots. Every computed view
    /// carries over **by reference**: the normalized and monadic views,
    /// the object profiles, and the scaffold are all shared through
    /// their `Arc`s (one reference-count bump each), and the database's
    /// fact logs share every sealed chunk
    /// ([`crate::chunked::ChunkedLog`]) — a freeze copies only the
    /// unsealed log tails and the counters, O(changed) regardless of
    /// `|D|`. The maintenance counters copy their current values so
    /// `STATS` served off a snapshot reports the writer's history.
    /// The owning session's next mutation sees the shared `Arc`s and
    /// splits off a private copy of exactly the views it touches
    /// (`Arc::make_mut` copy-on-write), so the frozen snapshot is
    /// immutable by construction and untouched views stay shared
    /// forever (asserted structurally by [`Session::sharing_with`]).
    pub fn freeze(&self) -> Session {
        fn copied<T: Clone>(src: &OnceLock<T>) -> OnceLock<T> {
            let dst = OnceLock::new();
            if let Some(v) = src.get() {
                let _ = dst.set(v.clone());
            }
            dst
        }
        Session {
            db: self.db.clone(),
            epoch: self.epoch,
            max_pairs: self.max_pairs,
            rebuild_scaffold_on_write: self.rebuild_scaffold_on_write,
            normal: copied(&self.normal),
            monadic: copied(&self.monadic),
            voc_stamp: copied(&self.voc_stamp),
            profiles: copied(&self.profiles),
            scaffold: copied(&self.scaffold),
            scaffold_builds: AtomicU64::new(self.scaffold_builds.load(Ordering::Relaxed)),
            in_place_patches: AtomicU64::new(self.in_place_patches.load(Ordering::Relaxed)),
            cache_drops: AtomicU64::new(self.cache_drops.load(Ordering::Relaxed)),
        }
    }

    /// Whether this session's warm scaffold is the same shared object as
    /// `other`'s (observability hook for the snapshot-sharing tests).
    ///
    /// The answer is three-way on purpose: a `bool` would conflate
    /// "both warm but distinct" with "never computed", letting sharing
    /// *and* unsharing assertions pass vacuously when warmup silently
    /// failed. Callers asserting sharing state must demand
    /// [`Sharing::Shared`] / [`Sharing::Unshared`] explicitly;
    /// [`Sharing::Cold`] always means the assertion proved nothing.
    pub fn shares_scaffold_with(&self, other: &Session) -> Sharing {
        Sharing::of(self.scaffold.get(), other.scaffold.get())
    }

    /// Per-view structural-sharing report against `other` (typically a
    /// frozen snapshot of this session): which `Arc`-held views — and
    /// which *inner* components, the order dag and the constant→vertex
    /// table — are still the same shared objects. This is how the
    /// sharing proptests pin O(changed) behavior structurally: after a
    /// write, exactly the touched views may be [`Sharing::Unshared`];
    /// everything else must still be [`Sharing::Shared`].
    pub fn sharing_with(&self, other: &Session) -> SharingReport {
        fn warm<T>(r: Option<&Result<Arc<T>>>) -> Option<&Arc<T>> {
            match r {
                Some(Ok(a)) => Some(a),
                _ => None,
            }
        }
        let (nd_a, nd_b) = (warm(self.normal.get()), warm(other.normal.get()));
        let (md_a, md_b) = (warm(self.monadic.get()), warm(other.monadic.get()));
        SharingReport {
            normal: Sharing::of(nd_a, nd_b),
            monadic: Sharing::of(md_a, md_b),
            profiles: Sharing::of(self.profiles.get(), other.profiles.get()),
            scaffold: self.shares_scaffold_with(other),
            order_graph: Sharing::of(nd_a.map(|n| &n.graph), nd_b.map(|n| &n.graph)),
            vertex_map: Sharing::of(nd_a.map(|n| &n.vertex_of), nd_b.map(|n| &n.vertex_of)),
        }
    }

    /// Carries another session's lifetime maintenance counters into
    /// this one. Used on rollback snapshots (e.g. a serving layer
    /// rejecting a poisoning write): taken *before* the apply, the
    /// snapshot preserves the pre-write counter values so a rolled-back
    /// fragment contributes nothing to the observability surface.
    /// Scaffold-level counters (pair evictions, contention fallbacks)
    /// live in the scaffold object itself and restart with it.
    pub fn adopt_counters(&mut self, other: &Session) {
        self.scaffold_builds.store(
            other.scaffold_builds.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.in_place_patches.store(
            other.in_place_patches.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.cache_drops
            .store(other.cache_drops.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Snapshot of the session's maintenance counters: scaffold builds
    /// vs in-place write patches vs cache drops, plus the warm
    /// scaffold's pair-eviction and contention-fallback counts. The
    /// observability surface the serving layer's `STATS` reply reads.
    pub fn stats(&self) -> SessionStats {
        let (pair_evictions, contention_fallbacks) = match self.scaffold.get() {
            Some(sc) => (sc.pair_evictions(), sc.contention_fallbacks()),
            None => (0, 0),
        };
        SessionStats {
            epoch: self.epoch,
            scaffold_builds: self.scaffold_builds.load(Ordering::Relaxed),
            in_place_patches: self.in_place_patches.load(Ordering::Relaxed),
            cache_drops: self.cache_drops.load(Ordering::Relaxed),
            pair_evictions,
            contention_fallbacks,
        }
    }

    // ------------------------------------------------------------------
    // Mutation (incremental where the order dag is unchanged)
    // ------------------------------------------------------------------

    /// Adds a proper fact (validated against the vocabulary).
    pub fn insert_fact(&mut self, voc: &Vocabulary, pred: PredSym, args: Vec<Term>) -> Result<()> {
        self.push_proper(ProperAtom::new(voc, pred, args)?);
        Ok(())
    }

    /// Adds an already-validated proper fact.
    ///
    /// When the atom's order arguments are all already mapped to dag
    /// vertices, the cached views are updated in place; otherwise (a fresh
    /// order constant appears) they are dropped and recomputed lazily.
    pub fn push_proper(&mut self, atom: ProperAtom) {
        self.epoch += 1;
        let incremental = match self.normal.get() {
            Some(Ok(nd)) => atom.order_args().all(|u| nd.vertex_of.contains_key(&u)),
            _ => false,
        };
        if !incremental {
            self.invalidate_all();
            self.db.push_proper(atom);
            return;
        }

        // The order dag is untouched: patch each computed view. A 1-ary
        // atom is monadic-order or monadic-object exactly by the sort of
        // its argument (construction validated it against the signature).
        match (atom.args.first(), atom.args.len()) {
            (Some(Term::Ord(u)), 1) => {
                self.in_place_patches.fetch_add(1, Ordering::Relaxed);
                let mut vertex = None;
                if let Some(Ok(mdb)) = self.monadic.get_mut() {
                    let v = match self.normal.get() {
                        Some(Ok(nd)) => nd.vertex_of[u],
                        _ => unreachable!("incremental implies a warm normal cache"),
                    };
                    // Unshare only the monadic view (snapshots keep the
                    // frozen labels); the dag `Arc` inside it stays
                    // shared — a label insert never touches the graph.
                    Arc::make_mut(mdb).labels[v].insert(atom.pred);
                    vertex = Some(v);
                }
                // The scaffold's D(S,T) tables cache label unions, which
                // this insert changes — patch them in place (a label-only
                // insert affects nothing else the scaffold memoizes).
                if self.rebuild_scaffold_on_write {
                    self.scaffold.take();
                } else if let Some(v) = vertex {
                    if let Some(sc) = self.scaffold_mut() {
                        sc.patch_label_insert(v, atom.pred);
                    }
                }
            }
            (Some(Term::Obj(o)), 1) => {
                // Definite monadic-object fact: the monadic view skips
                // these (§4 split), only the profiles change — vertex
                // labels are untouched, so the scaffold stays valid.
                self.in_place_patches.fetch_add(1, Ordering::Relaxed);
                if let Some(profiles) = self.profiles.get_mut() {
                    Arc::make_mut(profiles).insert(atom.pred, *o);
                }
            }
            _ => {
                // An n-ary fact: the monadic view (if any) no longer
                // matches the database — it only exists for monadic ones.
                // The normal view still patches in place, but dropping a
                // warm monadic view/scaffold is a cache drop, not an
                // absorbed write — count it as what it costs.
                if self.monadic.get().is_some() || self.scaffold.get().is_some() {
                    self.cache_drops.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.in_place_patches.fetch_add(1, Ordering::Relaxed);
                }
                self.monadic.take();
                self.scaffold.take();
            }
        }
        if let Some(Ok(nd)) = self.normal.get_mut() {
            // Unshares the normalized *view* struct only: the proper log
            // shares its sealed chunks, and the dag/vertex tables are
            // `Arc` bumps — O(changed) even right after a freeze.
            Arc::make_mut(nd).proper.push(atom.clone());
        }
        self.db.push_proper(atom);
    }

    /// Adds `u < v`. When both constants are already dag vertices and the
    /// edge closes no cycle, every cached view *including the scaffold*
    /// is patched in place (incremental closure update, local topo-order
    /// repair, selective pair eviction); otherwise every cache is
    /// invalidated.
    pub fn assert_lt(&mut self, u: OrdSym, v: OrdSym) {
        self.insert_order_edge(u, v, OrderRel::Lt);
    }

    /// Adds `u <= v`, with the same incremental patching as
    /// [`Session::assert_lt`] (a cycle-closing `<=` triggers an N1 merge,
    /// which is structural — that case takes the invalidating path).
    pub fn assert_le(&mut self, u: OrdSym, v: OrdSym) {
        self.insert_order_edge(u, v, OrderRel::Le);
    }

    fn insert_order_edge(&mut self, u: OrdSym, v: OrdSym, rel: OrderRel) {
        self.epoch += 1;
        if self.try_patch_order_edge(u, v, rel) {
            self.in_place_patches.fetch_add(1, Ordering::Relaxed);
        } else {
            self.invalidate_all();
        }
        match rel {
            OrderRel::Lt => self.db.assert_lt(u, v),
            OrderRel::Le => self.db.assert_le(u, v),
            OrderRel::Ne => unreachable!("!= goes through assert_ne"),
        }
    }

    /// In-place insertion of an order edge into the warm views: possible
    /// exactly when the normalized view is cached, both endpoints are
    /// known vertices, and the edge closes no cycle (a cycle means an N1
    /// re-merge under `<=` or an inconsistency under `<`, both
    /// structural). The normalized and monadic graphs gain the edge in
    /// place, and the scaffold — when warm — is patched rather than
    /// dropped: its reachability closure is updated incrementally in the
    /// same motion as the monadic graph edge
    /// ([`crate::ordgraph::OrderGraph::insert_dag_edge_tracked`]), then
    /// [`DisjunctiveScaffold::patch_order_edge`] repairs the topological
    /// order locally and evicts only the affected `(S, T)` pairs.
    /// Returns `false` when the invalidating slow path must run instead.
    fn try_patch_order_edge(&mut self, u: OrdSym, v: OrdSym, rel: OrderRel) -> bool {
        let Some(Ok(nd)) = self.normal.get() else {
            return false;
        };
        let (Some(&cu), Some(&cv)) = (nd.vertex_of.get(&u), nd.vertex_of.get(&v)) else {
            return false;
        };
        if cu == cv {
            // Both constants sit in one N1 class: `u <= v` is discharged
            // by N2 (nothing changes); `u < v` makes the database
            // inconsistent — surface that through renormalization.
            return rel == OrderRel::Le;
        }
        if nd.graph.reaches(cv, cu) {
            return false;
        }
        // Take the scaffold out for the patch pass, unsharing it first:
        // frozen snapshots holding the same `Arc` must keep seeing the
        // pre-write tables.
        let mut scaffold = self
            .scaffold
            .take()
            .filter(|_| !self.rebuild_scaffold_on_write)
            .map(|arc| Arc::try_unwrap(arc).unwrap_or_else(|shared| shared.cow_clone()));
        // Split borrows: the two view `OnceLock`s are distinct fields.
        let Session {
            normal, monadic, ..
        } = self;
        let Some(Ok(nd)) = normal.get_mut() else {
            unreachable!("warmth checked above");
        };
        let nd = Arc::make_mut(nd);
        match monadic.get_mut() {
            Some(Ok(mdb)) => {
                let mdb = Arc::make_mut(mdb);
                // Both views alias one dag `Arc` by construction. Retire
                // the monadic alias first, so `make_mut` on the normal
                // side clones the graph only when frozen snapshots
                // actually hold it — then patch the single graph once
                // and re-alias. (The `ptr_eq` check is defensive; the
                // alias invariant holds on every session-built view.)
                let aliased = Arc::ptr_eq(&nd.graph, &mdb.graph);
                if aliased {
                    mdb.graph = Arc::new(placeholder_graph());
                }
                let tracked = {
                    let g = Arc::make_mut(&mut nd.graph);
                    match &mut scaffold {
                        Some(sc) => {
                            // Patch the graph and the scaffold's closure
                            // together, then finish the scaffold-side
                            // maintenance (topo repair + selective pair
                            // eviction) once the alias is restored.
                            Some(g.insert_dag_edge_tracked(cu, cv, rel, sc.reach_mut()))
                        }
                        None => {
                            g.insert_dag_edge(cu, cv, rel);
                            None
                        }
                    }
                };
                if aliased {
                    mdb.graph = Arc::clone(&nd.graph);
                } else {
                    Arc::make_mut(&mut mdb.graph).insert_dag_edge(cu, cv, rel);
                }
                if let (Some(sc), Some((outcome, changed))) = (&mut scaffold, tracked) {
                    sc.patch_order_edge(mdb, cu, cv, outcome, &changed);
                }
            }
            _ => {
                Arc::make_mut(&mut nd.graph).insert_dag_edge(cu, cv, rel);
                // No monadic view means no scaffold to keep.
                scaffold = None;
            }
        }
        if let Some(sc) = scaffold {
            let _ = self.scaffold.set(Arc::new(sc));
        }
        true
    }

    /// Adds `u != v` (§7). When both constants are already known dag
    /// vertices, the cached views gain the constraint in place and the
    /// scaffold survives — its memoized blocked-commit bits resync lazily
    /// ([`DisjunctiveScaffold::note_ne_mutation`]); a `!=` over a fresh
    /// constant drops the caches.
    pub fn assert_ne(&mut self, u: OrdSym, v: OrdSym) {
        self.epoch += 1;
        if self.try_patch_ne(u, v) {
            self.in_place_patches.fetch_add(1, Ordering::Relaxed);
        } else {
            self.invalidate_all();
        }
        self.db.assert_ne(u, v);
    }

    /// In-place `!=` insert: possible when the normalized view is warm
    /// and both constants are known vertices (a contradictory pair
    /// `u != u` is representable — the engines check for it). Mirrors
    /// exactly what renormalization would produce: the pair of N1-class
    /// vertices appended to the `ne` lists.
    fn try_patch_ne(&mut self, u: OrdSym, v: OrdSym) -> bool {
        let Some(Ok(nd)) = self.normal.get() else {
            return false;
        };
        let (Some(&cu), Some(&cv)) = (nd.vertex_of.get(&u), nd.vertex_of.get(&v)) else {
            return false;
        };
        if let Some(Ok(nd)) = self.normal.get_mut() {
            // CoW-unshare just the view structs; the dag and vertex
            // tables inside stay shared with any frozen snapshots.
            Arc::make_mut(nd).ne.push((cu, cv));
        }
        if let Some(Ok(mdb)) = self.monadic.get_mut() {
            Arc::make_mut(mdb).ne.push((cu, cv));
        }
        if self.rebuild_scaffold_on_write {
            self.scaffold.take();
        } else if let Some(sc) = self.scaffold_mut() {
            sc.note_ne_mutation();
        }
        true
    }

    /// Adds a chain of order atoms with one relation, dropping the caches.
    pub fn assert_chain(&mut self, rel: OrderRel, chain: &[OrdSym]) {
        self.mutate_order(|db| db.assert_chain(rel, chain));
    }

    /// Merges another database in, dropping the caches.
    pub fn extend(&mut self, other: &Database) {
        self.mutate_order(|db| db.extend(other));
    }

    fn mutate_order(&mut self, f: impl FnOnce(&mut Database)) {
        self.epoch += 1;
        self.invalidate_all();
        f(&mut self.db);
    }

    fn invalidate_all(&mut self) {
        // Count only drops of a genuinely warm cache: a write-first
        // workload on a cold session has nothing to lose, and reporting
        // it as a drop would misread as rebuild churn in `stats()`.
        // (`normal` is the root view — nothing else can be warm without
        // it.)
        if self.normal.get().is_some() {
            self.cache_drops.fetch_add(1, Ordering::Relaxed);
        }
        self.normal.take();
        self.monadic.take();
        self.scaffold.take();
        // The vocabulary stamp deliberately survives invalidation:
        // mutations change the stored atoms, never the meaning of the
        // already-interned symbols, and dropping it would silently
        // re-open the mismatch guard after every insertion.
        self.profiles.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_database;

    #[test]
    fn caches_warm_lazily_and_survive_reads() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        let s = Session::new(db);
        assert!(!s.is_warm());
        let n1 = s.normal().unwrap().graph.len();
        assert!(s.is_warm());
        let n2 = s.normal().unwrap().graph.len();
        assert_eq!(n1, n2);
        assert_eq!(s.monadic(&voc).unwrap().len(), 2);
        assert_eq!(s.epoch(), 0);
    }

    #[test]
    fn acyclic_order_edge_patches_in_place() {
        // Regression test for over-invalidation: an acyclic order-edge
        // insert over known vertices must keep the normalized and
        // monadic views warm (patched in place) — and, since the
        // incremental-maintenance work, the scaffold layer too.
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); pred Q(ord); P(u); Q(v);").unwrap();
        let mut s = Session::new(db);
        assert_eq!(s.normal().unwrap().width(), 2);
        s.disjunctive_scaffold(&voc).unwrap();
        let (u, v) = (voc.ord("u"), voc.ord("v"));
        s.assert_lt(u, v);
        assert!(s.is_warm(), "acyclic edge insert must not renormalize");
        assert!(
            s.scaffold.get().is_some(),
            "the scaffold must be patched in place, not dropped"
        );
        s.scaffold
            .get()
            .unwrap()
            .validate(s.monadic(&voc).unwrap())
            .expect("patched scaffold matches fresh recomputation");
        assert_eq!(s.normal().unwrap().width(), 1);
        assert_eq!(s.epoch(), 1);
        // The patched views match a cold recomputation exactly.
        let fresh = Session::new(s.database().clone());
        assert_eq!(fresh.normal().unwrap().graph, s.normal().unwrap().graph);
        assert_eq!(fresh.monadic(&voc).unwrap(), s.monadic(&voc).unwrap());
        // A second <= edge (still acyclic) also patches; the derived
        // strongest-edge dedup matches normalization.
        s.assert_le(u, v);
        assert!(s.is_warm());
        assert!(s.scaffold.get().is_some());
        let fresh = Session::new(s.database().clone());
        assert_eq!(fresh.normal().unwrap().graph, s.normal().unwrap().graph);
    }

    #[test]
    fn scaffold_rebuild_on_write_restores_drop_behavior() {
        // The benchmark-baseline knob: identical mutations, but the
        // scaffold drops on every write like before the incremental work.
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); pred Q(ord); P(u); Q(v);").unwrap();
        let mut s = Session::new(db).with_scaffold_rebuild_on_write(true);
        s.disjunctive_scaffold(&voc).unwrap();
        let (u, v) = (voc.ord("u"), voc.ord("v"));
        s.assert_lt(u, v);
        assert!(s.is_warm(), "graph views still patch in place");
        assert!(s.scaffold.get().is_none(), "baseline drops the scaffold");
        s.disjunctive_scaffold(&voc).unwrap();
        let p = voc.find_pred("P").unwrap();
        s.insert_fact(&voc, p, vec![Term::Ord(v)]).unwrap();
        assert!(s.scaffold.get().is_none(), "label writes drop it too");
    }

    #[test]
    fn cycle_closing_order_edge_invalidates() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); P(u); P(v); u <= v;").unwrap();
        let mut s = Session::new(db);
        assert_eq!(s.normal().unwrap().graph.len(), 2);
        let (u, v) = (voc.ord("u"), voc.ord("v"));
        // v <= u closes a <=-cycle: N1 merges the pair — structural, so
        // the whole cache drops and renormalization sees one vertex.
        s.assert_le(v, u);
        assert!(!s.is_warm());
        assert_eq!(s.normal().unwrap().graph.len(), 1);
        // u < v on the merged class is inconsistent; the session must
        // surface the error, not patch silently.
        s.assert_lt(u, v);
        assert!(s.normal().is_err());
    }

    #[test]
    fn le_on_merged_class_is_a_noop_patch() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); P(u); P(v); u <= v; v <= u;").unwrap();
        let mut s = Session::new(db);
        assert_eq!(s.normal().unwrap().graph.len(), 1);
        let (u, v) = (voc.ord("u"), voc.ord("v"));
        // u <= v inside one N1 class is discharged by N2: the caches
        // stay warm and nothing changes.
        s.assert_le(u, v);
        assert!(s.is_warm());
        assert_eq!(s.normal().unwrap().graph.len(), 1);
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn incremental_fact_insert_updates_views_in_place() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        let mut s = Session::new(db);
        let p = voc.find_pred("P").unwrap();
        let q = voc.find_pred("Q").unwrap();
        let mdb0 = s.monadic(&voc).unwrap().clone();
        assert!(!mdb0.labels[1].contains(p));
        // Insert P(v): order constant `v` is already a vertex.
        let v = voc.ord("v");
        s.insert_fact(&voc, p, vec![Term::Ord(v)]).unwrap();
        assert!(s.is_warm(), "in-place update must keep the cache warm");
        let mdb = s.monadic(&voc).unwrap();
        let vx = s.normal().unwrap().vertex(v);
        assert!(mdb.labels[vx].contains(p) && mdb.labels[vx].contains(q));
        // And the patched view matches a cold recomputation.
        let fresh = Session::new(s.database().clone());
        assert_eq!(fresh.monadic(&voc).unwrap(), mdb);
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn fresh_constant_invalidates() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); P(u);").unwrap();
        let mut s = Session::new(db);
        s.normal().unwrap();
        let p = voc.find_pred("P").unwrap();
        let w = voc.ord("w");
        s.insert_fact(&voc, p, vec![Term::Ord(w)]).unwrap();
        assert!(!s.is_warm());
        assert_eq!(s.normal().unwrap().graph.len(), 2);
    }

    #[test]
    fn object_profiles_compute_and_update() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred Emp(obj); pred Boss(obj); Emp(alice);").unwrap();
        let mut s = Session::new(db);
        let emp = voc.find_pred("Emp").unwrap();
        let boss = voc.find_pred("Boss").unwrap();
        let profiles = s.object_profiles().unwrap();
        assert_eq!(profiles.len(), 1);
        assert!(profiles[0].contains(emp));
        // Incremental definite insert extends the cached profiles.
        let alice = voc.find_obj("alice").unwrap();
        s.insert_fact(&voc, boss, vec![Term::Obj(alice)]).unwrap();
        let profiles = s.object_profiles().unwrap();
        assert!(profiles[0].contains(boss));
        let fresh = Session::new(s.database().clone());
        assert_eq!(fresh.object_profiles().unwrap(), profiles);
    }

    #[test]
    fn scaffold_caches_and_tracks_label_mutation() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        let mut s = Session::new(db);
        let sc = s.disjunctive_scaffold(&voc).unwrap();
        assert_eq!(sc.vertex_count(), 2);
        let first = sc as *const _;
        assert!(
            std::ptr::eq(first, s.disjunctive_scaffold(&voc).unwrap()),
            "second lookup must hit the cache"
        );
        // An in-place label insert changes the D(S,T) label unions: the
        // scaffold patches them and survives (regression test for the
        // pre-incremental drop).
        let p = voc.find_pred("P").unwrap();
        let v = voc.ord("v");
        s.insert_fact(&voc, p, vec![Term::Ord(v)]).unwrap();
        assert!(s.is_warm());
        assert!(
            s.scaffold.get().is_some(),
            "label insert patches the scaffold in place"
        );
        assert!(
            std::ptr::eq(first, s.disjunctive_scaffold(&voc).unwrap()),
            "same scaffold object survives the write"
        );
        s.scaffold
            .get()
            .unwrap()
            .validate(s.monadic(&voc).unwrap())
            .expect("patched label unions match fresh recomputation");
        // An order mutation over *fresh* constants changes the vertex set:
        // that is structural and still drops everything.
        let (a, b) = (voc.ord("a"), voc.ord("b"));
        s.assert_lt(a, b);
        assert!(s.scaffold.get().is_none());
        assert_eq!(s.disjunctive_scaffold(&voc).unwrap().vertex_count(), 4);
    }

    #[test]
    fn label_insert_patches_warm_pair_tables() {
        // Warm the pair table with a real search shape, then insert a
        // label fact and check the cached a(S,T) unions were updated.
        let mut voc = Vocabulary::new();
        let db = parse_database(
            &mut voc,
            "pred P(ord); pred Q(ord); pred R(ord); P(u); Q(v); R(w); u < v;",
        )
        .unwrap();
        let mut s = Session::new(db);
        let sc = s.disjunctive_scaffold(&voc).unwrap();
        {
            let mdb = s.monadic(&voc).unwrap();
            let mut pairs = sc.pairs();
            let (e, i) = (pairs.empty_id(), pairs.initial_id());
            pairs.ensure(sc, mdb, i, e); // D(S,T) = whole dag
        }
        assert!(sc.cached_pair_count() > 0);
        let q = voc.find_pred("Q").unwrap();
        let w = voc.ord("w");
        s.insert_fact(&voc, q, vec![Term::Ord(w)]).unwrap();
        let sc = s.scaffold.get().expect("scaffold survives");
        sc.validate(s.monadic(&voc).unwrap())
            .expect("patched labels match fresh recomputation");
    }

    #[test]
    fn ne_insert_over_known_vertices_keeps_caches_warm() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); pred Q(ord); P(u); Q(v);").unwrap();
        let mut s = Session::new(db);
        s.disjunctive_scaffold(&voc).unwrap();
        let (u, v) = (voc.ord("u"), voc.ord("v"));
        s.assert_ne(u, v);
        assert!(s.is_warm(), "known-vertex != must not renormalize");
        assert!(s.scaffold.get().is_some(), "scaffold survives !=");
        assert_eq!(s.normal().unwrap().ne, vec![(0, 1)]);
        assert_eq!(s.monadic(&voc).unwrap().ne, vec![(0, 1)]);
        // The patched views match a cold renormalization.
        let fresh = Session::new(s.database().clone());
        assert_eq!(fresh.normal().unwrap().ne, s.normal().unwrap().ne);
        assert_eq!(fresh.monadic(&voc).unwrap(), s.monadic(&voc).unwrap());
        // A != naming a fresh constant is structural: caches drop.
        let w = voc.ord("w");
        s.assert_ne(u, w);
        assert!(!s.is_warm());
        assert_eq!(s.normal().unwrap().ne.len(), 2);
    }

    #[test]
    fn sub_scaffold_tracks_ne_mutations() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); Q(v);").unwrap();
        let mut s = Session::new(db);
        assert!(s.sub_scaffold(&voc).unwrap().is_unrestricted());
        let (u, v) = (voc.ord("u"), voc.ord("v"));
        s.assert_ne(u, v);
        let sub = s.sub_scaffold(&voc).unwrap();
        assert!(!sub.is_unrestricted());
        assert!(std::ptr::eq(
            sub.parent(),
            s.disjunctive_scaffold(&voc).unwrap()
        ));
    }

    #[test]
    fn nary_insert_invalidates_monadic_but_not_normal() {
        let mut voc = Vocabulary::new();
        voc.pred("R", &[crate::sym::Sort::Order, crate::sym::Sort::Order])
            .unwrap();
        let db = parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        let mut s = Session::new(db);
        assert!(s.monadic(&voc).is_ok());
        let r = voc.find_pred("R").unwrap();
        let (u, v) = (voc.ord("u"), voc.ord("v"));
        s.insert_fact(&voc, r, vec![Term::Ord(u), Term::Ord(v)])
            .unwrap();
        assert!(s.is_warm(), "normal view updated in place");
        assert!(s.monadic(&voc).is_err(), "monadic view must now reject");
        assert_eq!(s.normal().unwrap().proper.len(), 3);
        // Dropping the warm monadic view counts as a cache drop in the
        // stats, not as an absorbed in-place write.
        let st = s.stats();
        assert_eq!(st.cache_drops, 1, "{st:?}");
        assert_eq!(st.in_place_patches, 0, "{st:?}");
    }

    #[test]
    fn inconsistent_database_error_is_cached_and_cleared() {
        let mut voc = Vocabulary::new();
        let mut db = Database::new();
        let (u, v) = (voc.ord("u"), voc.ord("v"));
        db.assert_lt(u, v);
        db.assert_lt(v, u);
        let mut s = Session::new(db);
        assert!(s.normal().is_err());
        assert!(s.normal().is_err());
        // The session can recover if the database is rebuilt.
        let mut fixed = Database::new();
        fixed.assert_lt(u, v);
        s = Session::new(fixed);
        assert!(s.normal().is_ok());
    }

    #[test]
    fn mismatched_vocabulary_is_rejected_grown_one_accepted() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        let s = Session::new(db);
        assert!(s.monadic(&voc).is_ok());
        // The same vocabulary, grown by a new predicate: still accepted.
        voc.monadic_pred("R");
        assert!(s.monadic(&voc).is_ok());
        // A structurally different vocabulary: rejected, not silently
        // answered off the stale view.
        let mut other = Vocabulary::new();
        other.monadic_pred("X");
        other.monadic_pred("Y");
        assert_eq!(
            s.monadic(&other).unwrap_err(),
            crate::error::CoreError::VocabularyMismatch
        );
        // The guard survives mutations: invalidating the cached views
        // must not re-open the session to a foreign vocabulary.
        let mut s = s;
        let (a, b) = (voc.ord("a"), voc.ord("b"));
        s.assert_le(a, b);
        assert_eq!(
            s.monadic(&other).unwrap_err(),
            crate::error::CoreError::VocabularyMismatch
        );
        assert!(s.monadic(&voc).is_ok());
    }

    #[test]
    fn stats_track_builds_patches_and_drops() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); pred Q(ord); P(u); Q(v);").unwrap();
        let mut s = Session::new(db);
        assert_eq!(s.stats(), SessionStats::default());
        s.disjunctive_scaffold(&voc).unwrap();
        assert_eq!(s.stats().scaffold_builds, 1);
        assert_eq!(s.stats().scaffold_rebuilds(), 0);
        // Acyclic edge + known-vertex != + label insert: all in-place.
        let (u, v) = (voc.ord("u"), voc.ord("v"));
        s.assert_lt(u, v);
        s.assert_ne(u, v);
        let p = voc.find_pred("P").unwrap();
        s.insert_fact(&voc, p, vec![Term::Ord(v)]).unwrap();
        let st = s.stats();
        assert_eq!(st.in_place_patches, 3);
        assert_eq!(st.cache_drops, 0);
        assert_eq!(st.scaffold_builds, 1, "no write forced a rebuild");
        assert_eq!(st.epoch, 3);
        // A fresh constant is structural: the caches drop, and the next
        // scaffold access counts as a rebuild.
        let w = voc.ord("w");
        s.assert_lt(v, w);
        assert_eq!(s.stats().cache_drops, 1);
        s.disjunctive_scaffold(&voc).unwrap();
        assert_eq!(s.stats().scaffold_builds, 2);
        assert_eq!(s.stats().scaffold_rebuilds(), 1);
        // Clones keep the epoch but start with zeroed counters.
        let cloned = s.clone().stats();
        assert_eq!(cloned.epoch, s.epoch());
        assert_eq!(SessionStats { epoch: 0, ..cloned }, SessionStats::default());
    }

    #[test]
    fn cold_writes_are_not_counted_as_cache_drops() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); P(u);").unwrap();
        let mut s = Session::new(db);
        // Nothing computed yet: writes have no cache to lose.
        let (v, w) = (voc.ord("v"), voc.ord("w"));
        s.assert_lt(v, w);
        let p = voc.find_pred("P").unwrap();
        s.insert_fact(&voc, p, vec![Term::Ord(w)]).unwrap();
        assert_eq!(s.stats().cache_drops, 0, "{:?}", s.stats());
        // Warm it, then a structural write counts.
        s.normal().unwrap();
        s.assert_lt(voc.ord("x"), voc.ord("y"));
        assert_eq!(s.stats().cache_drops, 1);
    }

    #[test]
    fn stats_report_pair_evictions_under_max_pairs() {
        let mut voc = Vocabulary::new();
        let db = parse_database(
            &mut voc,
            "pred P(ord); pred Q(ord); pred R(ord); P(u); Q(v); R(w);",
        )
        .unwrap();
        let s = Session::new(db).with_max_pairs(1);
        let sc = s.disjunctive_scaffold(&voc).unwrap();
        {
            let mdb = s.monadic(&voc).unwrap();
            let mut pairs = sc.pairs();
            let (e, i) = (pairs.empty_id(), pairs.initial_id());
            pairs.ensure(sc, mdb, i, e);
            pairs.ensure(sc, mdb, e, i);
            pairs.ensure(sc, mdb, e, e);
        }
        // The cap is enforced on the next acquisition.
        let _ = sc.pairs();
        assert!(s.stats().pair_evictions >= 2, "{:?}", s.stats());
    }

    #[test]
    fn freeze_is_warm_and_shares_the_scaffold() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); pred Q(ord); P(u); Q(v);").unwrap();
        let mut s = Session::new(db);
        s.disjunctive_scaffold(&voc).unwrap();
        let snap = s.freeze();
        assert!(snap.is_warm(), "freeze carries the computed views");
        assert_eq!(
            s.shares_scaffold_with(&snap),
            Sharing::Shared,
            "one scaffold, two owners"
        );
        // Every view is carried by reference, inner tables included.
        let report = s.sharing_with(&snap);
        assert_eq!(report.normal, Sharing::Shared);
        assert_eq!(report.monadic, Sharing::Shared);
        assert_eq!(report.order_graph, Sharing::Shared);
        assert_eq!(report.vertex_map, Sharing::Shared);
        assert_eq!(snap.stats().scaffold_builds, 1, "counters carry over");
        // A snapshot read must not count as a fresh build.
        snap.disjunctive_scaffold(&voc).unwrap();
        assert_eq!(snap.stats().scaffold_builds, 1);
        // The writer's next patchable write splits off a private copy:
        // the snapshot keeps its frozen tables, both stay consistent.
        let (u, v) = (voc.ord("u"), voc.ord("v"));
        s.assert_lt(u, v);
        assert_eq!(
            s.shares_scaffold_with(&snap),
            Sharing::Unshared,
            "write must unshare the scaffold, not drop it"
        );
        // The order edge unshared the graph but not the vertex table.
        let report = s.sharing_with(&snap);
        assert_eq!(report.order_graph, Sharing::Unshared);
        assert_eq!(report.vertex_map, Sharing::Shared);
        assert!(snap.scaffold.get().is_some(), "snapshot keeps its view");
        snap.scaffold
            .get()
            .unwrap()
            .validate(snap.monadic(&voc).unwrap())
            .expect("frozen scaffold still matches the frozen database");
        s.scaffold
            .get()
            .unwrap()
            .validate(s.monadic(&voc).unwrap())
            .expect("writer's split-off scaffold matches the new database");
        assert_eq!(s.stats().scaffold_builds, 1, "a CoW split is not a rebuild");
        assert_eq!(s.stats().in_place_patches, 1);
        // Same for the != path (epoch-bump maintenance under CoW).
        let snap2 = s.freeze();
        assert_eq!(s.shares_scaffold_with(&snap2), Sharing::Shared);
        s.assert_ne(u, v);
        assert_eq!(s.shares_scaffold_with(&snap2), Sharing::Unshared);
        assert_eq!(snap2.monadic(&voc).unwrap().ne, vec![]);
        assert_eq!(s.monadic(&voc).unwrap().ne, vec![(0, 1)]);
        // A != write touches the ne lists only: the dag stays shared.
        let report = s.sharing_with(&snap2);
        assert_eq!(report.order_graph, Sharing::Shared);
        assert_eq!(report.vertex_map, Sharing::Shared);
    }

    #[test]
    fn shares_scaffold_with_is_cold_not_false_on_unwarmed_sessions() {
        // Regression: the old boolean API returned `false` for cold
        // sessions, so "must not share" assertions passed vacuously when
        // warmup silently failed. Cold must be its own answer.
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); P(u);").unwrap();
        let s = Session::new(db);
        let other = s.clone();
        assert_eq!(s.shares_scaffold_with(&other), Sharing::Cold);
        s.disjunctive_scaffold(&voc).unwrap();
        assert_eq!(
            s.shares_scaffold_with(&other),
            Sharing::Cold,
            "one warm side is still not a comparison"
        );
        other.disjunctive_scaffold(&voc).unwrap();
        assert_eq!(
            s.shares_scaffold_with(&other),
            Sharing::Unshared,
            "independently built scaffolds are distinct objects"
        );
        let report = s.sharing_with(&other);
        assert_eq!(report.scaffold, Sharing::Unshared);
        assert_eq!(report.profiles, Sharing::Cold);
    }

    #[test]
    fn freeze_shares_the_fact_log_chunks() {
        // The database's sealed chunks are shared between writer and
        // snapshot, and later appends never unshare them.
        let mut voc = Vocabulary::new();
        let p = voc.pred("P", &[crate::sym::Sort::Order]).unwrap();
        let mut db = Database::new();
        for i in 0..200 {
            let u = voc.ord(&format!("u{i}"));
            db.assert_fact(&voc, p, vec![Term::Ord(u)]).unwrap();
        }
        let mut s = Session::new(db);
        s.normal().unwrap();
        let snap = s.freeze();
        let sealed = s.database().proper_atoms().sealed_chunks();
        assert!(sealed >= 3);
        assert_eq!(
            s.database()
                .proper_atoms()
                .shared_chunks_with(snap.database().proper_atoms()),
            sealed
        );
        // Writer keeps appending: the snapshot's chunks stay shared.
        let u0 = voc.ord("u0");
        for _ in 0..100 {
            s.insert_fact(&voc, p, vec![Term::Ord(u0)]).unwrap();
        }
        assert_eq!(
            s.database()
                .proper_atoms()
                .shared_chunks_with(snap.database().proper_atoms()),
            sealed
        );
    }

    #[test]
    fn clone_starts_cold_with_same_content() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); Q(v); u <= v;").unwrap();
        let s = Session::new(db);
        s.normal().unwrap();
        let c = s.clone();
        assert!(!c.is_warm());
        assert_eq!(c.database(), s.database());
    }
}
