//! A small text syntax for databases and queries.
//!
//! ## Databases
//!
//! A database is a `;`-separated list of facts:
//!
//! ```text
//! IC(z1, z2, A); IC(z3, z4, B);
//! z1 < z2 < z3 < z4;          // order chains are sugar
//! u <= v; v != w;
//! ```
//!
//! Sort inference: a name that occurs in any order atom is an order
//! constant; other names are object constants unless an already-declared
//! predicate signature says otherwise. New predicates are declared on first
//! use with the inferred signature. Signatures can also be declared
//! explicitly:
//!
//! ```text
//! pred P(ord); pred Rel(obj, ord, ord);
//! ```
//!
//! ## Queries
//!
//! ```text
//! exists s t. P(s) & s < t & (Q(t) | R(t))
//! ```
//!
//! `&` binds tighter than `|`; parentheses group; `exists` may appear
//! nested. Names not bound by an `exists` are constants and must already be
//! interned in the vocabulary. Comparison chains (`s < t <= u`) are sugar
//! for conjunctions.

use crate::atom::OrderRel;
use crate::database::Database;
use crate::error::{CoreError, Result, Span};
use crate::query::{eliminate_constants, DnfQuery, QTerm, QueryExpr};
use crate::sym::{Sort, Vocabulary};

/// Renders a caret diagnostic pointing a [`Span`] into `input`: the line
/// containing the span followed by `^^^` markers under the offending
/// bytes. Used by interactive surfaces (the REPL, the server's error
/// replies) to show *where* a parse failed, not just why.
pub fn caret_snippet(input: &str, span: Span) -> String {
    let start = span.start.min(input.len());
    let line_start = input[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let line_end = input[start..]
        .find('\n')
        .map(|i| start + i)
        .unwrap_or(input.len());
    let line = &input[line_start..line_end];
    let col = input[line_start..start].chars().count();
    let width = input[start..span.end.min(line_end).max(start)]
        .chars()
        .count()
        .max(1);
    format!("{line}\n{}{}", " ".repeat(col), "^".repeat(width))
}

/// Parses a database in the text syntax, interning symbols as needed.
pub fn parse_database(voc: &mut Vocabulary, input: &str) -> Result<Database> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    p.database(voc)
}

/// Parses a query; constants are eliminated against an empty database.
/// Use [`parse_query_with_db`] to obtain the matching augmented database.
pub fn parse_query(voc: &mut Vocabulary, input: &str) -> Result<DnfQuery> {
    let (_, q) = parse_query_with_db(voc, &Database::new(), input)?;
    Ok(q)
}

/// Parses a query that may mention constants, returning the augmented
/// database (with `P_u(u)` guard facts, §2) and the constant-free DNF.
pub fn parse_query_with_db(
    voc: &mut Vocabulary,
    db: &Database,
    input: &str,
) -> Result<(Database, DnfQuery)> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.query(voc)?;
    p.expect_eof()?;
    eliminate_constants(voc, db, &expr)
}

/// Parses a query to its raw [`QueryExpr`] (no constant elimination).
pub fn parse_query_expr(voc: &mut Vocabulary, input: &str) -> Result<QueryExpr> {
    parse_query_expr_in(voc, input)
}

/// [`parse_query_expr`] against a shared vocabulary: query parsing only
/// *reads* symbols (unknown predicates error; unknown names become
/// variables), so no `&mut` is needed — the per-request path of a
/// server can parse without cloning the vocabulary.
pub fn parse_query_expr_in(voc: &Vocabulary, input: &str) -> Result<QueryExpr> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.query(voc)?;
    p.expect_eof()?;
    Ok(expr)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Semi,
    Dot,
    Amp,
    Pipe,
    Lt,
    Le,
    Ne,
    Exists,
    Eof,
}

fn lex(input: &str) -> Result<Vec<(Tok, Span)>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // Decode a full char (UTF-8-safe): byte-wise classification
        // would split multi-byte codepoints and panic on the slice.
        let c = input[i..].chars().next().expect("i is a char boundary");
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push((Tok::LParen, Span::point(i)));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, Span::point(i)));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, Span::point(i)));
                i += 1;
            }
            ';' => {
                out.push((Tok::Semi, Span::point(i)));
                i += 1;
            }
            '.' => {
                out.push((Tok::Dot, Span::point(i)));
                i += 1;
            }
            '&' => {
                out.push((Tok::Amp, Span::point(i)));
                i += 1;
            }
            '|' => {
                out.push((Tok::Pipe, Span::point(i)));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Le, Span::new(i, i + 2)));
                    i += 2;
                } else {
                    out.push((Tok::Lt, Span::point(i)));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Ne, Span::new(i, i + 2)));
                    i += 2;
                } else {
                    return Err(CoreError::Parse {
                        span: Span::point(i),
                        message: "expected `!=`".to_string(),
                    });
                }
            }
            _ if c.is_alphanumeric() || c == '_' || c == '$' => {
                let start = i;
                while i < bytes.len() {
                    let d = input[i..].chars().next().expect("i is a char boundary");
                    if d.is_alphanumeric() || d == '_' || d == '$' {
                        i += d.len_utf8();
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                let span = Span::new(start, i);
                if word == "exists" {
                    out.push((Tok::Exists, span));
                } else {
                    out.push((Tok::Ident(word.to_string()), span));
                }
            }
            _ => {
                return Err(CoreError::Parse {
                    span: Span::new(i, i + c.len_utf8()),
                    message: format!("unexpected character `{c}`"),
                })
            }
        }
    }
    // Empty span at the end: callers can slice the source by any span
    // the parser reports (`&input[span.start..span.end]` never panics).
    out.push((Tok::Eof, Span::new(input.len(), input.len())));
    Ok(out)
}

struct Parser {
    tokens: Vec<(Tok, Span)>,
    pos: usize,
}

/// An atom as parsed, before sort resolution.
#[derive(Debug, Clone)]
enum RawFact {
    Proper {
        pred: String,
        args: Vec<String>,
    },
    Order {
        lhs: String,
        rel: OrderRel,
        rhs: String,
    },
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].0
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].0.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<()> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            Err(self.err("expected end of input"))
        }
    }

    fn err(&self, msg: &str) -> CoreError {
        CoreError::Parse {
            span: self.span(),
            message: msg.to_string(),
        }
    }

    fn ident(&mut self) -> Result<String> {
        let span = self.span();
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            _ => Err(CoreError::Parse {
                span,
                message: "expected identifier".to_string(),
            }),
        }
    }

    fn rel(&mut self) -> Option<OrderRel> {
        match self.peek() {
            Tok::Lt => {
                self.bump();
                Some(OrderRel::Lt)
            }
            Tok::Le => {
                self.bump();
                Some(OrderRel::Le)
            }
            Tok::Ne => {
                self.bump();
                Some(OrderRel::Ne)
            }
            _ => None,
        }
    }

    // ---- database -------------------------------------------------------

    fn database(&mut self, voc: &mut Vocabulary) -> Result<Database> {
        let mut raw: Vec<RawFact> = Vec::new();
        while *self.peek() != Tok::Eof {
            if self.peek_is_decl() {
                self.declaration(voc)?;
            } else {
                self.fact(&mut raw)?;
            }
            if *self.peek() == Tok::Semi {
                self.bump();
            } else if *self.peek() != Tok::Eof {
                return Err(self.err("expected `;` between facts"));
            }
        }
        // Pass 1: names in order atoms are order constants.
        let mut order_names: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for f in &raw {
            if let RawFact::Order { lhs, rhs, .. } = f {
                order_names.insert(lhs);
                order_names.insert(rhs);
            }
        }
        // Names at positions with known Order signatures are order too;
        // iterate to a fixpoint (signatures can come from the vocabulary or
        // from earlier facts in this database — one extra pass suffices for
        // practical inputs, so loop until stable).
        loop {
            let mut changed = false;
            for f in &raw {
                if let RawFact::Proper { pred, args } = f {
                    if let Some(p) = voc.find_pred(pred) {
                        let sig = voc.signature(p).clone();
                        if sig.arity() == args.len() {
                            for (a, &s) in args.iter().zip(&sig.arg_sorts) {
                                if s == Sort::Order && order_names.insert(a) {
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            // Declare any new predicates using current knowledge.
            for f in &raw {
                if let RawFact::Proper { pred, args } = f {
                    if voc.find_pred(pred).is_none() {
                        let sorts: Vec<Sort> = args
                            .iter()
                            .map(|a| {
                                if order_names.contains(a.as_str()) {
                                    Sort::Order
                                } else {
                                    Sort::Object
                                }
                            })
                            .collect();
                        voc.pred(pred, &sorts)?;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Pass 2: build.
        let mut db = Database::new();
        for f in &raw {
            match f {
                RawFact::Proper { pred, args } => {
                    let p = voc.find_pred(pred).expect("declared above");
                    let sig = voc.signature(p).clone();
                    if sig.arity() != args.len() {
                        return Err(CoreError::ArityMismatch {
                            pred: pred.clone(),
                            expected: sig.arity(),
                            found: args.len(),
                        });
                    }
                    let mut terms = Vec::with_capacity(args.len());
                    for (a, &s) in args.iter().zip(&sig.arg_sorts) {
                        let t = match s {
                            Sort::Order => crate::atom::Term::Ord(voc.ord(a)),
                            Sort::Object => {
                                if order_names.contains(a.as_str()) {
                                    return Err(CoreError::SortMismatch {
                                        pred: pred.clone(),
                                        position: args.iter().position(|x| x == a).unwrap_or(0),
                                        expected: Sort::Object,
                                    });
                                }
                                crate::atom::Term::Obj(voc.obj(a))
                            }
                        };
                        terms.push(t);
                    }
                    db.push_proper(crate::atom::ProperAtom {
                        pred: p,
                        args: terms,
                    });
                }
                RawFact::Order { lhs, rel, rhs } => {
                    let l = voc.ord(lhs);
                    let r = voc.ord(rhs);
                    db.order_push(*rel, l, r);
                }
            }
        }
        Ok(db)
    }

    /// `pred NAME(sorts)` lookahead: `pred` followed by an identifier.
    fn peek_is_decl(&self) -> bool {
        matches!(&self.tokens[self.pos].0, Tok::Ident(s) if s == "pred")
            && matches!(
                &self.tokens.get(self.pos + 1).map(|t| &t.0),
                Some(Tok::Ident(_))
            )
    }

    /// Parses `pred NAME(ord, obj, ...)`.
    fn declaration(&mut self, voc: &mut Vocabulary) -> Result<()> {
        self.bump(); // `pred`
        let name = self.ident()?;
        self.expect(Tok::LParen, "`(`")?;
        let mut sorts = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let s = self.ident()?;
                match s.as_str() {
                    "ord" | "order" => sorts.push(Sort::Order),
                    "obj" | "object" => sorts.push(Sort::Object),
                    _ => {
                        return Err(self.err("expected sort `ord` or `obj`"));
                    }
                }
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        voc.pred(&name, &sorts)?;
        Ok(())
    }

    fn fact(&mut self, out: &mut Vec<RawFact>) -> Result<()> {
        let first = self.ident()?;
        if *self.peek() == Tok::LParen {
            self.bump();
            let mut args = Vec::new();
            if *self.peek() != Tok::RParen {
                loop {
                    args.push(self.ident()?);
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::RParen, "`)`")?;
            out.push(RawFact::Proper { pred: first, args });
            Ok(())
        } else {
            // order chain: a (rel b)+
            let mut prev = first;
            let mut any = false;
            while let Some(rel) = self.rel() {
                let next = self.ident()?;
                out.push(RawFact::Order {
                    lhs: prev.clone(),
                    rel,
                    rhs: next.clone(),
                });
                prev = next;
                any = true;
            }
            if !any {
                return Err(self.err("expected `(` or an order relation"));
            }
            Ok(())
        }
    }

    // ---- query ----------------------------------------------------------

    fn query(&mut self, voc: &Vocabulary) -> Result<QueryExpr> {
        self.disjunction(voc)
    }

    fn disjunction(&mut self, voc: &Vocabulary) -> Result<QueryExpr> {
        let mut parts = vec![self.conjunction(voc)?];
        while *self.peek() == Tok::Pipe {
            self.bump();
            parts.push(self.conjunction(voc)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            QueryExpr::Or(parts)
        })
    }

    fn conjunction(&mut self, voc: &Vocabulary) -> Result<QueryExpr> {
        let mut parts = vec![self.primary(voc)?];
        while *self.peek() == Tok::Amp {
            self.bump();
            parts.push(self.primary(voc)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            QueryExpr::And(parts)
        })
    }

    fn primary(&mut self, voc: &Vocabulary) -> Result<QueryExpr> {
        match self.peek().clone() {
            Tok::Exists => {
                self.bump();
                let mut vars = vec![self.ident()?];
                while matches!(self.peek(), Tok::Ident(_)) {
                    vars.push(self.ident()?);
                }
                self.expect(Tok::Dot, "`.` after exists variables")?;
                // Scope of exists extends over a disjunction body.
                let body = self.disjunction(voc)?;
                Ok(QueryExpr::Exists(vars, Box::new(body)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.disjunction(voc)?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(_) => {
                let name_span = self.span();
                let name = self.ident()?;
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.ident()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "`)`")?;
                    let pred = voc.find_pred(&name).ok_or_else(|| CoreError::Parse {
                        span: name_span,
                        message: format!(
                            "unknown predicate `{name}` in query (declare it via a database first)"
                        ),
                    })?;
                    let sig = voc.signature(pred).clone();
                    if sig.arity() != args.len() {
                        return Err(CoreError::ArityMismatch {
                            pred: name,
                            expected: sig.arity(),
                            found: args.len(),
                        });
                    }
                    let qargs = args
                        .iter()
                        .zip(&sig.arg_sorts)
                        .map(|(a, &s)| self.qterm(voc, a, Some(s)))
                        .collect::<Result<Vec<_>>>()?;
                    Ok(QueryExpr::Proper { pred, args: qargs })
                } else {
                    // order comparison chain
                    let mut atoms = Vec::new();
                    let mut prev = name;
                    let mut any = false;
                    while let Some(rel) = self.rel() {
                        let next = self.ident()?;
                        let l = self.qterm(voc, &prev, Some(Sort::Order))?;
                        let r = self.qterm(voc, &next, Some(Sort::Order))?;
                        atoms.push(QueryExpr::Order {
                            lhs: l,
                            rel,
                            rhs: r,
                        });
                        prev = next;
                        any = true;
                    }
                    if !any {
                        return Err(self.err("expected `(` or an order relation"));
                    }
                    Ok(if atoms.len() == 1 {
                        atoms.pop().unwrap()
                    } else {
                        QueryExpr::And(atoms)
                    })
                }
            }
            _ => Err(self.err("expected atom, `(`, or `exists`")),
        }
    }

    /// Resolves a query term name: a known constant of matching sort, or a
    /// variable (binding is checked later during DNF conversion).
    fn qterm(&mut self, voc: &Vocabulary, name: &str, sort: Option<Sort>) -> Result<QTerm> {
        match sort {
            Some(Sort::Object) => {
                if let Some(o) = voc.find_obj(name) {
                    return Ok(QTerm::ObjConst(o));
                }
            }
            Some(Sort::Order) => {
                if let Some(u) = voc.find_ord(name) {
                    return Ok(QTerm::OrdConst(u));
                }
            }
            None => {}
        }
        Ok(QTerm::Var(name.to_string()))
    }
}

impl Database {
    /// Internal helper used by the parser.
    fn order_push(&mut self, rel: OrderRel, l: crate::sym::OrdSym, r: crate::sym::OrdSym) {
        match rel {
            OrderRel::Lt => self.assert_lt(l, r),
            OrderRel::Le => self.assert_le(l, r),
            OrderRel::Ne => self.assert_ne(l, r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_database() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); Q(v); u < v;").unwrap();
        assert_eq!(db.proper_atoms().len(), 2);
        assert_eq!(db.order_atoms().len(), 1);
        assert!(voc.all_monadic_order());
    }

    #[test]
    fn order_chain_sugar() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "z1 < z2 <= z3 != z4;").unwrap();
        assert_eq!(db.order_atoms().len(), 3);
        assert_eq!(db.order_atoms()[1].rel, OrderRel::Le);
        assert_eq!(db.order_atoms()[2].rel, OrderRel::Ne);
    }

    #[test]
    fn mixed_sorts_inferred() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "IC(z1, z2, A); z1 < z2;").unwrap();
        let ic = voc.find_pred("IC").unwrap();
        assert_eq!(
            voc.signature(ic).arg_sorts,
            vec![Sort::Order, Sort::Order, Sort::Object]
        );
        assert_eq!(db.object_constants().len(), 1);
    }

    #[test]
    fn signature_reuse_across_facts() {
        let mut voc = Vocabulary::new();
        // First fact fixes the signature (u ordered), second fact's `w`
        // must then be an order constant even without its own order atom.
        let db = parse_database(&mut voc, "P(u); u < v; P(w);").unwrap();
        assert_eq!(db.order_constant_count(), 3);
    }

    #[test]
    fn parse_query_basic() {
        let mut voc = Vocabulary::new();
        parse_database(&mut voc, "pred P(ord); pred Q(ord);").unwrap();
        let q = parse_query(&mut voc, "exists s t. P(s) & s < t & Q(t)").unwrap();
        assert_eq!(q.disjuncts().len(), 1);
        assert!(q.is_tight());
    }

    #[test]
    fn parse_query_disjunction_precedence() {
        let mut voc = Vocabulary::new();
        parse_database(&mut voc, "P(u); Q(u); R(u);").unwrap();
        let q = parse_query(&mut voc, "exists t. P(t) & Q(t) | exists t. R(t)").unwrap();
        assert_eq!(q.disjuncts().len(), 2);
        assert_eq!(q.disjuncts()[0].proper.len(), 2);
        assert_eq!(q.disjuncts()[1].proper.len(), 1);
    }

    #[test]
    fn parse_query_chain_and_parens() {
        let mut voc = Vocabulary::new();
        parse_database(&mut voc, "pred P(ord);").unwrap();
        let q = parse_query(&mut voc, "exists a b c. P(a) & a < b <= c & (P(b) | P(c))").unwrap();
        assert_eq!(q.disjuncts().len(), 2);
    }

    #[test]
    fn query_constants_are_guarded() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "P(u); u < v; P(v);").unwrap();
        let (db2, q) = parse_query_with_db(&mut voc, &db, "exists t. P(t) & u < t").unwrap();
        // guard fact for `u` was added
        assert_eq!(db2.proper_atoms().len(), db.proper_atoms().len() + 1);
        assert!(q.is_tight());
    }

    #[test]
    fn unknown_predicate_in_query_errors() {
        let mut voc = Vocabulary::new();
        let e = parse_query(&mut voc, "exists t. Zap(t)").unwrap_err();
        assert!(matches!(e, CoreError::Parse { .. }));
    }

    #[test]
    fn lex_errors_have_spans() {
        let mut voc = Vocabulary::new();
        let e = parse_database(&mut voc, "P(u) @").unwrap_err();
        match e {
            CoreError::Parse { span, .. } => assert_eq!(span, Span::point(5)),
            _ => panic!("expected parse error"),
        }
    }

    #[test]
    fn malformed_fact_lines_point_at_the_offending_token() {
        let mut voc = Vocabulary::new();
        // Missing `;` between facts: the span covers the token that
        // should have been a separator — the full `Q` identifier.
        let input = "P(u) Q(v);";
        let e = parse_database(&mut voc, input).unwrap_err();
        assert_eq!(e.span(), Some(Span::new(5, 6)));
        // A dangling order relation points at the end of input (an
        // empty span — still sliceable: `&input[3..3]` is valid).
        let input = "u <";
        let e = parse_database(&mut voc, input).unwrap_err();
        assert_eq!(e.span(), Some(Span::new(3, 3)));
        assert_eq!(&input[3..3], "");
        // An identifier where `(` or a relation must follow spans the
        // unexpected token, not the statement start.
        let input = "P(u); lonely;";
        let e = parse_database(&mut voc, input).unwrap_err();
        assert_eq!(e.span(), Some(Span::point(12)));
    }

    #[test]
    fn malformed_query_lines_point_at_the_offending_token() {
        let mut voc = Vocabulary::new();
        parse_database(&mut voc, "pred P(ord);").unwrap();
        // Unknown predicate: the span covers the predicate name, even
        // though resolution happens after the argument list is consumed.
        let input = "exists t. Zap(t)";
        let e = parse_query(&mut voc, input).unwrap_err();
        assert_eq!(e.span(), Some(Span::new(10, 13)));
        assert_eq!(&input[10..13], "Zap");
        // Missing `.` after the exists binder: `P` is swallowed as a
        // variable, so the error points at the `(` that follows.
        let input = "exists t P(t)";
        let e = parse_query(&mut voc, input).unwrap_err();
        assert_eq!(e.span(), Some(Span::new(10, 11)));
        // Trailing garbage after a complete query.
        let input = "exists t. P(t) P(t)";
        let e = parse_query(&mut voc, input).unwrap_err();
        assert_eq!(e.span(), Some(Span::new(15, 16)));
    }

    #[test]
    fn non_ascii_input_lexes_without_panicking() {
        // Regression: the lexer used to classify bytes as chars and
        // slice mid-codepoint on multi-byte input — a panic reachable
        // from untrusted wire input. Alphanumeric unicode is a valid
        // identifier character; anything else errors with a
        // codepoint-wide span.
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); P(é);").unwrap();
        assert_eq!(db.proper_atoms().len(), 1);
        let e = parse_database(&mut voc, "P(u) €").unwrap_err();
        assert_eq!(e.span(), Some(Span::new(5, 8)), "euro sign is 3 bytes");
        // Slicing the input by the reported span is always valid.
        let input = "P(u) €";
        assert_eq!(&input[5..8], "€");
        // And the parser-never-panics property holds for char soup.
        let _ = parse_database(&mut voc, "héllo wörld ∀x");
        let _ = parse_query(&mut voc, "exists t. ¬P(t)");
    }

    #[test]
    fn caret_snippet_points_at_the_span() {
        let input = "P(u); lonely;";
        let mut voc = Vocabulary::new();
        let e = parse_database(&mut voc, input).unwrap_err();
        let snippet = caret_snippet(input, e.span().unwrap());
        assert_eq!(snippet, "P(u); lonely;\n            ^");
        // Multi-byte-safe: spans past the end clamp instead of panicking.
        assert!(caret_snippet("ab", Span::new(5, 9)).ends_with('^'));
        // Multi-line input: only the offending line is shown.
        let input = "P(u);\nQ(v) @";
        let e = parse_database(&mut voc, input).unwrap_err();
        let snippet = caret_snippet(input, e.span().unwrap());
        assert_eq!(snippet, "Q(v) @\n     ^");
    }

    #[test]
    fn comments_are_skipped() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "// the guard's log\nP(u); // trailing\nu < v;").unwrap();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn bad_bang_is_an_error() {
        let mut voc = Vocabulary::new();
        assert!(parse_database(&mut voc, "u ! v;").is_err());
    }

    #[test]
    fn explicit_declarations() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "pred P(ord); pred E(obj, ord); P(u); E(a, u);").unwrap();
        assert_eq!(db.proper_atoms().len(), 2);
        let e = voc.find_pred("E").unwrap();
        assert_eq!(voc.signature(e).arg_sorts, vec![Sort::Object, Sort::Order]);
        // conflicting redeclaration errors
        assert!(parse_database(&mut voc, "pred P(obj);").is_err());
    }

    #[test]
    fn nullary_predicates_parse() {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, "Flag();").unwrap();
        assert_eq!(db.proper_atoms().len(), 1);
        let f = voc.find_pred("Flag").unwrap();
        assert_eq!(voc.signature(f).arity(), 0);
    }
}
