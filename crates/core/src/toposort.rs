//! Generalized topological sorts and minimal-model enumeration.
//!
//! The paper's notion of topological sort (§2) is more general than the
//! usual one: a sort is any mapping `f` from the dag's vertices **onto** a
//! linear order that preserves the order relations — distinct vertices may
//! map to the *same* point (they were only `<=`-related or unrelated).
//!
//! Sorts are produced stage by stage. At each stage a set `S` of vertices
//! is selected subject to (Example 2.4):
//!
//! * **S1** — each element of `S` is *minor* in the subgraph of unsorted
//!   vertices (no ascending path through a `<` edge ends at it);
//! * **S2** — if `u ∈ S` and there is an unsorted `v` with an edge
//!   `v <= u`, then `v ∈ S` as well.
//!
//! The elements of `S` map to the next point. Every order-preserving onto
//! mapping arises this way, so enumerating stage choices enumerates the
//! **minimal models** of a database (Prop. 2.8), which suffice for
//! entailment (Cor. 2.9). The enumeration is exponential — it is the
//! reference ("naive") decision procedure, and the engines exist to avoid
//! it.

use crate::atom::{OrderRel, Term};
use crate::bitset::BitSet;
use crate::database::NormalDatabase;
use crate::error::{CoreError, Result};
use crate::model::{FiniteModel, GroundFact, MTerm};
use crate::ordgraph::OrderGraph;

/// Hard cap on the number of minor vertices for which stage subsets are
/// enumerated (the subset loop is `2^minors`).
const MAX_MINORS: usize = 22;

/// A topological sort of an order graph: `stage_of[v]` is the point vertex
/// `v` maps to; stages are `0..n_stages`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoSort {
    /// Point assigned to each vertex.
    pub stage_of: Vec<usize>,
    /// Number of points.
    pub n_stages: usize,
}

impl TopoSort {
    /// The vertex sets of each stage.
    pub fn stages(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.n_stages];
        for (v, &s) in self.stage_of.iter().enumerate() {
            out[s].push(v);
        }
        out
    }
}

/// Whether enumeration ran to completion or was stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumOutcome {
    /// All sorts were visited.
    Exhausted,
    /// The callback requested an early stop.
    Stopped,
}

/// Enumerates every generalized topological sort of `graph`, calling
/// `f(&stage_of, n_stages)`; `f` returns `false` to stop early.
///
/// Errors with [`CoreError::CapExceeded`] when some stage offers more than
/// a fixed cap of minor vertices (the stage-subset loop is exponential).
pub fn for_each_sort(
    graph: &OrderGraph,
    f: &mut dyn FnMut(&[usize], usize) -> bool,
) -> Result<EnumOutcome> {
    let n = graph.len();
    let mut stage_of = vec![usize::MAX; n];
    let live = BitSet::full(n);
    go(graph, &live, 0, &mut stage_of, f)
}

fn go(
    graph: &OrderGraph,
    live: &BitSet,
    stage: usize,
    stage_of: &mut Vec<usize>,
    f: &mut dyn FnMut(&[usize], usize) -> bool,
) -> Result<EnumOutcome> {
    if live.is_empty() {
        return if f(stage_of, stage) {
            Ok(EnumOutcome::Exhausted)
        } else {
            Ok(EnumOutcome::Stopped)
        };
    }
    let minors: Vec<usize> = graph.minor_within(live).iter().collect();
    if minors.len() > MAX_MINORS {
        return Err(CoreError::CapExceeded {
            what: "minor vertices per stage in topological sort enumeration".to_string(),
            limit: MAX_MINORS,
        });
    }
    // Enumerate nonempty subsets S of the minors closed under rule S2:
    // u ∈ S and live v with v <= u  ⟹  v ∈ S.
    'subsets: for mask in 1u32..(1 << minors.len()) {
        let mut in_s = BitSet::with_capacity(graph.len());
        for (i, &v) in minors.iter().enumerate() {
            if mask & (1 << i) != 0 {
                in_s.insert(v);
            }
        }
        // S2 closure check (predecessors of S-members through <= edges
        // that are still live must be in S; they are guaranteed minor).
        for u in in_s.iter() {
            for &(v, rel) in graph.predecessors(u) {
                let v = v as usize;
                if rel == OrderRel::Le && live.contains(v) && !in_s.contains(v) {
                    continue 'subsets;
                }
            }
        }
        for v in in_s.iter() {
            stage_of[v] = stage;
        }
        let mut next_live = live.clone();
        next_live.difference_with(&in_s);
        match go(graph, &next_live, stage + 1, stage_of, f)? {
            EnumOutcome::Stopped => return Ok(EnumOutcome::Stopped),
            EnumOutcome::Exhausted => {}
        }
        for v in in_s.iter() {
            stage_of[v] = usize::MAX;
        }
    }
    Ok(EnumOutcome::Exhausted)
}

/// Collects all sorts (use only for small graphs; guarded by `cap`).
pub fn all_sorts(graph: &OrderGraph, cap: usize) -> Result<Vec<TopoSort>> {
    let mut out = Vec::new();
    let outcome = for_each_sort(graph, &mut |stage_of, n_stages| {
        out.push(TopoSort {
            stage_of: stage_of.to_vec(),
            n_stages,
        });
        out.len() < cap
    })?;
    if outcome == EnumOutcome::Stopped {
        return Err(CoreError::CapExceeded {
            what: "topological sorts".to_string(),
            limit: cap,
        });
    }
    Ok(out)
}

/// One canonical sort: at each stage take *all* minor vertices. This yields
/// the sort with the fewest stages.
pub fn canonical_sort(graph: &OrderGraph) -> TopoSort {
    let n = graph.len();
    let mut stage_of = vec![usize::MAX; n];
    let mut live = BitSet::full(n);
    let mut stage = 0;
    while !live.is_empty() {
        let minors = graph.minor_within(&live);
        debug_assert!(!minors.is_empty(), "a dag always has a minor vertex");
        for v in minors.iter() {
            stage_of[v] = stage;
        }
        live.difference_with(&minors);
        stage += 1;
    }
    TopoSort {
        stage_of,
        n_stages: stage,
    }
}

/// Builds the minimal model determined by a sort of a database's graph
/// (Example 2.7): object constants denote themselves, each order constant
/// maps to its vertex's stage, and the facts are the images of the
/// database's proper atoms.
pub fn model_of_sort(db: &NormalDatabase, sort: &TopoSort) -> FiniteModel {
    let point_of = db
        .vertex_of
        .iter()
        .map(|(&u, &v)| (u, sort.stage_of[v]))
        .collect();
    let mut facts: Vec<GroundFact> = db
        .proper
        .iter()
        .map(|a| GroundFact {
            pred: a.pred,
            args: a
                .args
                .iter()
                .map(|t| match *t {
                    Term::Obj(o) => MTerm::Obj(o),
                    Term::Ord(u) => MTerm::Pt(sort.stage_of[db.vertex_of[&u]]),
                })
                .collect(),
        })
        .collect();
    facts.sort();
    facts.dedup();
    FiniteModel {
        n_points: sort.n_stages,
        point_of,
        facts,
    }
}

/// Whether a sort respects the database's `!=` constraints (§7).
pub fn sort_respects_ne(db: &NormalDatabase, sort: &TopoSort) -> bool {
    db.ne
        .iter()
        .all(|&(a, b)| sort.stage_of[a] != sort.stage_of[b])
}

/// Enumerates the minimal models of a database, deduplicated by their
/// stage assignment, respecting `!=` constraints. `f` returns `false` to
/// stop early.
pub fn for_each_minimal_model(
    db: &NormalDatabase,
    f: &mut dyn FnMut(&FiniteModel) -> bool,
) -> Result<EnumOutcome> {
    for_each_sort(&db.graph, &mut |stage_of, n_stages| {
        let sort = TopoSort {
            stage_of: stage_of.to_vec(),
            n_stages,
        };
        if !sort_respects_ne(db, &sort) {
            return true;
        }
        f(&model_of_sort(db, &sort))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::OrderRel::{Le, Lt};

    fn graph(n: usize, edges: &[(usize, usize, OrderRel)]) -> OrderGraph {
        OrderGraph::normalize(n, edges).unwrap().graph
    }

    fn count_sorts(g: &OrderGraph) -> usize {
        let mut c = 0;
        for_each_sort(g, &mut |_, _| {
            c += 1;
            true
        })
        .unwrap();
        c
    }

    #[test]
    fn single_vertex_has_one_sort() {
        let g = graph(1, &[]);
        assert_eq!(count_sorts(&g), 1);
    }

    #[test]
    fn two_incomparable_vertices_have_three_sorts() {
        // u,v unrelated: u<v, v<u, u=v — the three relationships of §1.
        let g = graph(2, &[]);
        assert_eq!(count_sorts(&g), 3);
    }

    #[test]
    fn le_edge_gives_two_sorts() {
        // u <= v: either u < v or u = v.
        let g = graph(2, &[(0, 1, Le)]);
        assert_eq!(count_sorts(&g), 2);
    }

    #[test]
    fn lt_edge_gives_one_sort() {
        let g = graph(2, &[(0, 1, Lt)]);
        assert_eq!(count_sorts(&g), 1);
        let s = canonical_sort(&g);
        assert_eq!(s.stage_of, vec![0, 1]);
    }

    #[test]
    fn example_2_4_sort_reachable() {
        // u < v < w, u <= t <= w; the example's sort: {u,t} {v} {w}.
        let g = graph(4, &[(0, 1, Lt), (1, 2, Lt), (0, 3, Le), (3, 2, Le)]);
        let mut found = false;
        for_each_sort(&g, &mut |stage_of, n| {
            if n == 3 && stage_of == [0, 1, 2, 0] {
                found = true;
            }
            true
        })
        .unwrap();
        assert!(found, "the sort of Example 2.4 must be enumerated");
    }

    #[test]
    fn s2_forces_le_predecessors_along() {
        // v <= u: u may only be placed together with v or after it; the
        // stage containing u at stage 0 must contain v.
        let g = graph(2, &[(1, 0, Le)]);
        for_each_sort(&g, &mut |stage_of, _| {
            assert!(stage_of[1] <= stage_of[0]);
            true
        })
        .unwrap();
    }

    #[test]
    fn canonical_sort_is_valid_and_minimal_stage_count() {
        let g = graph(4, &[(0, 1, Lt), (1, 2, Lt), (0, 3, Le), (3, 2, Le)]);
        let s = canonical_sort(&g);
        assert_eq!(s.n_stages, 3);
        // order constraints respected
        for (u, v, rel) in g.edges() {
            match rel {
                Lt => assert!(s.stage_of[u] < s.stage_of[v]),
                Le => assert!(s.stage_of[u] <= s.stage_of[v]),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn all_sorts_cap() {
        let g = graph(3, &[]);
        assert!(all_sorts(&g, 2).is_err());
        let sorts = all_sorts(&g, 1000).unwrap();
        // 3 unrelated vertices: 13 ordered set partitions (Fubini number a(3)).
        assert_eq!(sorts.len(), 13);
    }

    #[test]
    fn every_sort_respects_edges() {
        let g = graph(5, &[(0, 1, Lt), (1, 2, Le), (3, 4, Lt), (0, 4, Le)]);
        for_each_sort(&g, &mut |stage_of, _| {
            for (u, v, rel) in g.edges() {
                match rel {
                    Lt => assert!(stage_of[u] < stage_of[v]),
                    Le => assert!(stage_of[u] <= stage_of[v]),
                    _ => unreachable!(),
                }
            }
            true
        })
        .unwrap();
    }

    #[test]
    fn sorts_are_onto() {
        let g = graph(3, &[(0, 1, Le)]);
        for_each_sort(&g, &mut |stage_of, n_stages| {
            let mut seen = vec![false; n_stages];
            for &s in stage_of {
                seen[s] = true;
            }
            assert!(seen.iter().all(|&b| b), "every point must be hit");
            true
        })
        .unwrap();
    }

    #[test]
    fn minimal_models_respect_ne() {
        use crate::database::Database;
        use crate::sym::Vocabulary;
        let mut voc = Vocabulary::new();
        let mut db = Database::new();
        let u = voc.ord("u");
        let v = voc.ord("v");
        db.assert_ne(u, v);
        let nd = db.normalize().unwrap();
        let mut count = 0;
        for_each_minimal_model(&nd, &mut |m| {
            assert_eq!(m.n_points, 2, "u=v excluded by !=");
            count += 1;
            true
        })
        .unwrap();
        // u<v and v<u remain.
        assert_eq!(count, 2);
    }

    #[test]
    fn model_of_sort_builds_facts() {
        use crate::database::Database;
        use crate::sym::{Sort, Vocabulary};
        let mut voc = Vocabulary::new();
        let b = voc.pred("B", &[Sort::Object, Sort::Order]).unwrap();
        let mut db = Database::new();
        let (u, v, w, t) = (voc.ord("u"), voc.ord("v"), voc.ord("w"), voc.ord("t"));
        let a = voc.obj("a");
        let bb = voc.obj("b");
        db.assert_lt(u, v);
        db.assert_lt(v, w);
        db.assert_le(u, t);
        db.assert_le(t, w);
        db.assert_fact(&voc, b, vec![Term::Obj(a), Term::Ord(t)])
            .unwrap();
        db.assert_fact(&voc, b, vec![Term::Obj(bb), Term::Ord(w)])
            .unwrap();
        let nd = db.normalize().unwrap();
        // Example 2.7: the sort f(u)=f(t)=x1, f(v)=x2, f(w)=x3; the image
        // of B(a,t) is B(a, f(t)) and of B(b,w) is B(b, f(w)).
        let mut stage_of = vec![0usize; 4];
        stage_of[nd.vertex(u)] = 0;
        stage_of[nd.vertex(t)] = 0;
        stage_of[nd.vertex(v)] = 1;
        stage_of[nd.vertex(w)] = 2;
        let sort = TopoSort {
            stage_of,
            n_stages: 3,
        };
        let m = model_of_sort(&nd, &sort);
        assert_eq!(m.n_points, 3);
        assert!(m.facts.contains(&GroundFact {
            pred: nd.proper[0].pred,
            args: vec![MTerm::Obj(a), MTerm::Pt(0)]
        }));
        assert!(m.facts.contains(&GroundFact {
            pred: nd.proper[1].pred,
            args: vec![MTerm::Obj(bb), MTerm::Pt(2)]
        }));
    }
}
