//! Indefinite order databases.
//!
//! A [`Database`] is a finite set of ground proper atoms and order atoms
//! (§2). [`Database::normalize`] applies rules N1/N2, checks consistency,
//! and produces a [`NormalDatabase`] whose order constants are mapped onto
//! the vertices of an [`OrderGraph`] — the form every engine consumes.

use crate::atom::{OrderAtom, OrderRel, ProperAtom, Term};
use crate::chunked::ChunkedLog;
use crate::error::Result;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ordgraph::OrderGraph;
use crate::sym::{ObjSym, OrdSym, PredSym, Vocabulary};
use std::fmt;
use std::sync::Arc;

/// A raw indefinite order database: ground proper facts plus order facts.
///
/// Both fact logs are [`ChunkedLog`]s: cloning a database (session
/// snapshots, rollback copies) shares every sealed chunk with the
/// original and copies only the unsealed tails — O(changed), not O(|D|).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    proper: ChunkedLog<ProperAtom>,
    order: ChunkedLog<OrderAtom>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds a proper atom (validated against the vocabulary).
    pub fn assert_fact(&mut self, voc: &Vocabulary, pred: PredSym, args: Vec<Term>) -> Result<()> {
        self.proper.push(ProperAtom::new(voc, pred, args)?);
        Ok(())
    }

    /// Adds an already-validated proper atom.
    pub fn push_proper(&mut self, atom: ProperAtom) {
        self.proper.push(atom);
    }

    /// Adds the order atom `u < v`.
    pub fn assert_lt(&mut self, u: OrdSym, v: OrdSym) {
        self.order.push(OrderAtom::lt(u, v));
    }

    /// Adds the order atom `u <= v`.
    pub fn assert_le(&mut self, u: OrdSym, v: OrdSym) {
        self.order.push(OrderAtom::le(u, v));
    }

    /// Adds the inequality atom `u != v` (§7).
    pub fn assert_ne(&mut self, u: OrdSym, v: OrdSym) {
        self.order.push(OrderAtom::ne(u, v));
    }

    /// Adds a chain `u₁ r u₂ r … r uₙ` of order atoms with one relation.
    pub fn assert_chain(&mut self, rel: OrderRel, chain: &[OrdSym]) {
        for w in chain.windows(2) {
            self.order.push(OrderAtom {
                lhs: w[0],
                rel,
                rhs: w[1],
            });
        }
    }

    /// The proper atoms.
    pub fn proper_atoms(&self) -> &ChunkedLog<ProperAtom> {
        &self.proper
    }

    /// The order atoms.
    pub fn order_atoms(&self) -> &ChunkedLog<OrderAtom> {
        &self.order
    }

    /// Total number of atoms (the size measure `|D|` of the paper).
    pub fn len(&self) -> usize {
        self.proper.len() + self.order.len()
    }

    /// True when the database has no atoms.
    pub fn is_empty(&self) -> bool {
        self.proper.is_empty() && self.order.is_empty()
    }

    /// Merges another database into this one (used by the reductions, which
    /// build databases from independent components).
    pub fn extend(&mut self, other: &Database) {
        self.proper.extend(other.proper.iter().cloned());
        self.order.extend(other.order.iter().copied());
    }

    /// All order constants mentioned anywhere (order atoms *or* order
    /// positions of proper atoms), deduplicated, in first-seen order.
    pub fn order_constants(&self) -> Vec<OrdSym> {
        let mut seen: FxHashSet<OrdSym> = FxHashSet::default();
        let mut out = Vec::new();
        let mut visit = |u: OrdSym| {
            if seen.insert(u) {
                out.push(u);
            }
        };
        for a in &self.proper {
            for u in a.order_args() {
                visit(u);
            }
        }
        for a in &self.order {
            visit(a.lhs);
            visit(a.rhs);
        }
        out
    }

    /// Number of distinct order constants.
    pub fn order_constant_count(&self) -> usize {
        self.order_constants().len()
    }

    /// All object constants mentioned in proper atoms.
    pub fn object_constants(&self) -> Vec<ObjSym> {
        let mut seen: FxHashSet<ObjSym> = FxHashSet::default();
        let mut out = Vec::new();
        for a in &self.proper {
            for t in &a.args {
                if let Term::Obj(o) = t {
                    if seen.insert(*o) {
                        out.push(*o);
                    }
                }
            }
        }
        out
    }

    /// Normalizes the database: applies N1/N2 to the order atoms, checks
    /// consistency, and maps order constants onto dag vertices.
    ///
    /// Inequality atoms `u != v` are carried through unchanged (as vertex
    /// pairs); a pair that N1 merged into a single vertex makes the database
    /// inconsistent only under the `!=` semantics, which the engines check.
    pub fn normalize(&self) -> Result<NormalDatabase> {
        let consts = self.order_constants();
        let mut index: FxHashMap<OrdSym, usize> =
            FxHashMap::with_capacity_and_hasher(consts.len(), Default::default());
        for (i, &u) in consts.iter().enumerate() {
            index.insert(u, i);
        }
        let mut edges = Vec::with_capacity(self.order.len());
        let mut ne_pairs = Vec::new();
        for a in &self.order {
            let (l, r) = (index[&a.lhs], index[&a.rhs]);
            match a.rel {
                OrderRel::Lt | OrderRel::Le => edges.push((l, r, a.rel)),
                OrderRel::Ne => ne_pairs.push((l, r)),
            }
        }
        let nz = OrderGraph::normalize(consts.len(), &edges)?;
        let vertex_of: FxHashMap<OrdSym, usize> = consts
            .iter()
            .enumerate()
            .map(|(i, &u)| (u, nz.class_of[i]))
            .collect();
        let members: Vec<Vec<OrdSym>> = nz
            .members
            .iter()
            .map(|raws| raws.iter().map(|&i| consts[i]).collect())
            .collect();
        let ne: Vec<(usize, usize)> = ne_pairs
            .into_iter()
            .map(|(l, r)| (nz.class_of[l], nz.class_of[r]))
            .collect();
        Ok(NormalDatabase {
            proper: self.proper.clone(),
            graph: Arc::new(nz.graph),
            vertex_of: Arc::new(vertex_of),
            members: Arc::new(members),
            ne,
        })
    }

    /// Renders the database using vocabulary names, preceded by `pred`
    /// declarations for every predicate used — so the output re-parses
    /// to exactly this database under the same vocabulary
    /// ([`crate::parse::parse_database`] ∘ `display` == identity; the
    /// declarations pin signatures that sort inference alone could not
    /// reconstruct, e.g. `P(u)` with no order atom mentioning `u`).
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        DisplayDb { db: self, voc }
    }
}

struct DisplayDb<'a> {
    db: &'a Database,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayDb<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut declared: FxHashSet<PredSym> = FxHashSet::default();
        for a in &self.db.proper {
            if declared.insert(a.pred) {
                write!(f, "pred {}(", self.voc.pred_name(a.pred))?;
                for (i, s) in self.voc.signature(a.pred).arg_sorts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    f.write_str(match s {
                        crate::sym::Sort::Order => "ord",
                        crate::sym::Sort::Object => "obj",
                    })?;
                }
                writeln!(f, ");")?;
            }
        }
        for a in &self.db.proper {
            writeln!(f, "{};", a.display(self.voc))?;
        }
        for a in &self.db.order {
            writeln!(f, "{};", a.display(self.voc))?;
        }
        Ok(())
    }
}

/// A normalized database: proper atoms plus a consistent order dag, with
/// order constants mapped to dag vertices (possibly many-to-one after N1).
///
/// The big components are structurally shared: the proper-atom log shares
/// its sealed chunks with the [`Database`] it was normalized from, the
/// order dag sits behind an `Arc` that the monadic view
/// ([`crate::monadic::MonadicDatabase::from_normal`]) aliases instead of
/// cloning, and the constant→vertex tables are `Arc`-shared too (they
/// only change on structural renormalization). Cloning a
/// `NormalDatabase` — as [`crate::session::Session::freeze`] effectively
/// does through its view `Arc`s — is therefore O(changed).
#[derive(Debug, Clone)]
pub struct NormalDatabase {
    /// The proper atoms (unchanged; interpret their order arguments through
    /// [`NormalDatabase::vertex_of`]).
    pub proper: ChunkedLog<ProperAtom>,
    /// The normalized order dag, shared with the monadic view (in-place
    /// order-edge patches go through `Arc::make_mut` on *both* views in
    /// one motion — see `Session::try_patch_order_edge`).
    pub graph: Arc<OrderGraph>,
    /// Mapping order constant → dag vertex. Immutable between structural
    /// rebuilds, hence shared.
    pub vertex_of: Arc<FxHashMap<OrdSym, usize>>,
    /// The constants merged into each vertex. Immutable between
    /// structural rebuilds, hence shared.
    pub members: Arc<Vec<Vec<OrdSym>>>,
    /// Inequality constraints between vertices (§7); empty for `[<,<=]`
    /// databases. A pair `(v, v)` is possible (after merging) and makes the
    /// database unsatisfiable under `!=` semantics.
    pub ne: Vec<(usize, usize)>,
}

impl NormalDatabase {
    /// Vertex of an order constant.
    pub fn vertex(&self, u: OrdSym) -> usize {
        self.vertex_of[&u]
    }

    /// True when no `!=` constraint is present.
    pub fn is_ne_free(&self) -> bool {
        self.ne.is_empty()
    }

    /// True if some `!=` pair was merged by N1 (then no model exists).
    pub fn has_contradictory_ne(&self) -> bool {
        self.ne.iter().any(|&(a, b)| a == b)
    }

    /// The width of the database (§2) — the key tractability parameter.
    pub fn width(&self) -> usize {
        self.graph.width()
    }

    /// Proper atoms that mention no order constant (the *definite* part).
    pub fn definite_atoms(&self) -> impl Iterator<Item = &ProperAtom> {
        self.proper
            .iter()
            .filter(|a| a.order_args().next().is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::Sort;

    fn setup() -> (Vocabulary, Database) {
        let mut voc = Vocabulary::new();
        voc.pred("IC", &[Sort::Order, Sort::Order, Sort::Object])
            .unwrap();
        (voc, Database::new())
    }

    #[test]
    fn example_1_1_guard_log_builds() {
        // IC(z1,z2,A), IC(z3,z4,B), z1<z2<z3<z4  (the guard's log).
        let (mut voc, mut db) = setup();
        let ic = voc.find_pred("IC").unwrap();
        let a = voc.obj("A");
        let b = voc.obj("B");
        let z: Vec<_> = (1..=4).map(|i| voc.ord(&format!("z{i}"))).collect();
        db.assert_fact(
            &voc,
            ic,
            vec![Term::Ord(z[0]), Term::Ord(z[1]), Term::Obj(a)],
        )
        .unwrap();
        db.assert_fact(
            &voc,
            ic,
            vec![Term::Ord(z[2]), Term::Ord(z[3]), Term::Obj(b)],
        )
        .unwrap();
        db.assert_chain(OrderRel::Lt, &z);
        assert_eq!(db.len(), 5);
        assert_eq!(db.order_constant_count(), 4);
        let nd = db.normalize().unwrap();
        assert_eq!(nd.graph.len(), 4);
        assert_eq!(nd.width(), 1);
        assert!(nd.is_ne_free());
    }

    #[test]
    fn merged_constants_share_vertex() {
        let (_, mut db) = setup();
        let mut voc = Vocabulary::new();
        let u = voc.ord("u");
        let v = voc.ord("v");
        db.assert_le(u, v);
        db.assert_le(v, u);
        let nd = db.normalize().unwrap();
        assert_eq!(nd.graph.len(), 1);
        assert_eq!(nd.vertex(u), nd.vertex(v));
        assert_eq!(nd.members[0].len(), 2);
    }

    #[test]
    fn unconstrained_order_constants_become_vertices() {
        let mut voc = Vocabulary::new();
        let p = voc.pred("P", &[Sort::Order]).unwrap();
        let mut db = Database::new();
        let u = voc.ord("u");
        db.assert_fact(&voc, p, vec![Term::Ord(u)]).unwrap();
        let nd = db.normalize().unwrap();
        assert_eq!(nd.graph.len(), 1);
        assert_eq!(nd.width(), 1);
    }

    #[test]
    fn inconsistent_database_rejected() {
        let mut voc = Vocabulary::new();
        let mut db = Database::new();
        let u = voc.ord("u");
        let v = voc.ord("v");
        db.assert_lt(u, v);
        db.assert_le(v, u);
        assert!(db.normalize().is_err());
    }

    #[test]
    fn ne_pairs_map_to_vertices() {
        let mut voc = Vocabulary::new();
        let mut db = Database::new();
        let u = voc.ord("u");
        let v = voc.ord("v");
        let w = voc.ord("w");
        db.assert_le(u, v);
        db.assert_le(v, u);
        db.assert_ne(u, w);
        db.assert_ne(u, v); // merged pair → contradictory
        let nd = db.normalize().unwrap();
        assert!(!nd.is_ne_free());
        assert!(nd.has_contradictory_ne());
        assert_eq!(nd.ne.len(), 2);
    }

    #[test]
    fn width_two_for_two_observers() {
        let mut voc = Vocabulary::new();
        let mut db = Database::new();
        let z: Vec<_> = (0..3).map(|i| voc.ord(&format!("z{i}"))).collect();
        let u: Vec<_> = (0..3).map(|i| voc.ord(&format!("u{i}"))).collect();
        db.assert_chain(OrderRel::Lt, &z);
        db.assert_chain(OrderRel::Lt, &u);
        let nd = db.normalize().unwrap();
        assert_eq!(nd.width(), 2);
    }

    #[test]
    fn extend_concatenates() {
        let mut voc = Vocabulary::new();
        let mut d1 = Database::new();
        let mut d2 = Database::new();
        d1.assert_lt(voc.ord("a"), voc.ord("b"));
        d2.assert_lt(voc.ord("c"), voc.ord("d"));
        d1.extend(&d2);
        assert_eq!(d1.order_atoms().len(), 2);
        assert_eq!(d1.order_constant_count(), 4);
    }

    #[test]
    fn display_round_trips_visually() {
        let mut voc = Vocabulary::new();
        let p = voc.pred("P", &[Sort::Order]).unwrap();
        let mut db = Database::new();
        let u = voc.ord("u");
        let v = voc.ord("v");
        db.assert_fact(&voc, p, vec![Term::Ord(u)]).unwrap();
        db.assert_lt(u, v);
        let s = db.display(&voc).to_string();
        assert!(s.contains("P(u);"));
        assert!(s.contains("u < v;"));
    }
}
