//! Interned symbols and the two-sorted vocabulary.
//!
//! The paper's language is two-sorted (§2): an *object* sort and an *order*
//! sort, the latter denoting points of a linearly ordered domain. Every
//! predicate has a fixed signature assigning a sort to each argument
//! position. There are no function symbols.
//!
//! A [`Vocabulary`] interns predicate, object-constant, and order-constant
//! names to dense `u32` ids, so that databases, queries, and models built
//! against the same vocabulary compare symbols by id.

use crate::error::{CoreError, Result};
use crate::fxhash::FxHashMap;
use std::fmt;

/// The sort of a term position: object or order (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Ordinary domain elements.
    Object,
    /// Points of the linearly ordered domain.
    Order,
}

macro_rules! symbol_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u32);

        impl $name {
            /// The dense index of this symbol within its vocabulary table.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds a symbol from a dense index. The caller is responsible
            /// for the index being valid for the vocabulary in use.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("symbol index overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

symbol_type!(
    /// An interned predicate symbol.
    PredSym
);
symbol_type!(
    /// An interned object constant.
    ObjSym
);
symbol_type!(
    /// An interned order constant (a named unknown point).
    OrdSym
);

/// A predicate signature: the sorts of its argument positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Sort of each argument position.
    pub arg_sorts: Vec<Sort>,
}

impl Signature {
    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.arg_sorts.len()
    }

    /// A predicate is *monadic-on-order* when it has exactly one argument of
    /// the order sort. These are the predicates of §4–6 of the paper.
    pub fn is_monadic_order(&self) -> bool {
        self.arg_sorts.len() == 1 && self.arg_sorts[0] == Sort::Order
    }

    /// A predicate is *monadic-on-object* when it has exactly one argument
    /// of the object sort.
    pub fn is_monadic_object(&self) -> bool {
        self.arg_sorts.len() == 1 && self.arg_sorts[0] == Sort::Object
    }
}

#[derive(Debug, Clone, Default)]
struct Table {
    names: Vec<String>,
    index: FxHashMap<String, u32>,
}

impl Table {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = u32::try_from(self.names.len()).expect("too many symbols");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        i
    }

    fn lookup(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    fn truncate(&mut self, len: usize) {
        debug_assert!(len <= self.names.len(), "truncate cannot grow a table");
        for name in self.names.drain(len..) {
            self.index.remove(&name);
        }
    }
}

/// The shared symbol table for a family of databases, queries, and models.
///
/// Interning is cheap and idempotent; ids are dense per kind. Fresh-name
/// generation (used by the reductions and the constant-elimination
/// transform) is supported through [`Vocabulary::fresh_ord`] and friends.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    preds: Table,
    sigs: Vec<Signature>,
    objs: Table,
    ords: Table,
    fresh_counter: u64,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Declares (or re-finds) a predicate with the given signature.
    ///
    /// Returns an error if the name is already declared with a *different*
    /// signature.
    pub fn pred(&mut self, name: &str, arg_sorts: &[Sort]) -> Result<PredSym> {
        if let Some(i) = self.preds.lookup(name) {
            if self.sigs[i as usize].arg_sorts != arg_sorts {
                return Err(CoreError::SignatureConflict {
                    pred: name.to_string(),
                });
            }
            return Ok(PredSym(i));
        }
        let i = self.preds.intern(name);
        debug_assert_eq!(i as usize, self.sigs.len());
        self.sigs.push(Signature {
            arg_sorts: arg_sorts.to_vec(),
        });
        Ok(PredSym(i))
    }

    /// Declares a monadic predicate over the order sort — the common case in
    /// §4–6 of the paper.
    pub fn monadic_pred(&mut self, name: &str) -> PredSym {
        self.pred(name, &[Sort::Order])
            .expect("monadic signature conflict")
    }

    /// Interns an object constant.
    pub fn obj(&mut self, name: &str) -> ObjSym {
        ObjSym(self.objs.intern(name))
    }

    /// Interns an order constant.
    pub fn ord(&mut self, name: &str) -> OrdSym {
        OrdSym(self.ords.intern(name))
    }

    /// Generates a fresh order constant guaranteed not to collide with any
    /// interned name (names of the shape `$oN` are reserved for this).
    pub fn fresh_ord(&mut self, hint: &str) -> OrdSym {
        loop {
            let name = format!("${hint}{}", self.fresh_counter);
            self.fresh_counter += 1;
            if self.ords.lookup(&name).is_none() {
                return OrdSym(self.ords.intern(&name));
            }
        }
    }

    /// Generates a fresh monadic predicate (used by the constant-elimination
    /// transform of §2: one predicate `P_u` per eliminated constant).
    pub fn fresh_pred(&mut self, hint: &str, arg_sorts: &[Sort]) -> PredSym {
        loop {
            let name = format!("${hint}{}", self.fresh_counter);
            self.fresh_counter += 1;
            if self.preds.lookup(&name).is_none() {
                return self.pred(&name, arg_sorts).expect("fresh name collided");
            }
        }
    }

    /// Looks up a predicate by name.
    pub fn find_pred(&self, name: &str) -> Option<PredSym> {
        self.preds.lookup(name).map(PredSym)
    }

    /// Looks up an object constant by name.
    pub fn find_obj(&self, name: &str) -> Option<ObjSym> {
        self.objs.lookup(name).map(ObjSym)
    }

    /// Looks up an order constant by name.
    pub fn find_ord(&self, name: &str) -> Option<OrdSym> {
        self.ords.lookup(name).map(OrdSym)
    }

    /// Name of a predicate.
    pub fn pred_name(&self, p: PredSym) -> &str {
        &self.preds.names[p.index()]
    }

    /// Signature of a predicate.
    pub fn signature(&self, p: PredSym) -> &Signature {
        &self.sigs[p.index()]
    }

    /// Name of an object constant.
    pub fn obj_name(&self, o: ObjSym) -> &str {
        &self.objs.names[o.index()]
    }

    /// Name of an order constant.
    pub fn ord_name(&self, u: OrdSym) -> &str {
        &self.ords.names[u.index()]
    }

    /// Number of interned predicates.
    pub fn pred_count(&self) -> usize {
        self.preds.names.len()
    }

    /// Number of interned object constants.
    pub fn obj_count(&self) -> usize {
        self.objs.names.len()
    }

    /// Number of interned order constants.
    pub fn ord_count(&self) -> usize {
        self.ords.names.len()
    }

    /// True when *every* declared predicate is monadic over the order sort.
    pub fn all_monadic_order(&self) -> bool {
        self.sigs.iter().all(Signature::is_monadic_order)
    }

    /// A rollback point for [`Vocabulary::truncate`]. Interning is
    /// append-only (ids are dense per kind, never reused while live),
    /// so the symbol counts at mark time identify exactly the symbols
    /// added since — the cheap alternative to cloning the whole
    /// vocabulary around a speculative parse.
    pub fn mark(&self) -> VocMark {
        VocMark {
            preds: self.preds.names.len(),
            objs: self.objs.names.len(),
            ords: self.ords.names.len(),
            fresh: self.fresh_counter,
        }
    }

    /// Removes every symbol interned since `mark` was taken, restoring
    /// the vocabulary to its marked state. Ids handed out since the
    /// mark become dangling — the caller must also discard whatever was
    /// built from them (a failed parse's fragment, a rejected write).
    pub fn truncate(&mut self, mark: VocMark) {
        self.preds.truncate(mark.preds);
        self.sigs.truncate(mark.preds);
        self.objs.truncate(mark.objs);
        self.ords.truncate(mark.ords);
        self.fresh_counter = mark.fresh;
    }

    /// True when any symbol was interned since `mark` was taken.
    pub fn changed_since(&self, mark: VocMark) -> bool {
        self.preds.names.len() != mark.preds
            || self.objs.names.len() != mark.objs
            || self.ords.names.len() != mark.ords
    }
}

/// A [`Vocabulary`] rollback point — see [`Vocabulary::mark`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VocMark {
    preds: usize,
    objs: usize,
    ords: usize,
    fresh: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let p1 = v.pred("P", &[Sort::Order]).unwrap();
        let p2 = v.pred("P", &[Sort::Order]).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(v.pred_count(), 1);
        assert_eq!(v.pred_name(p1), "P");
    }

    #[test]
    fn signature_conflicts_are_rejected() {
        let mut v = Vocabulary::new();
        v.pred("P", &[Sort::Order]).unwrap();
        let e = v.pred("P", &[Sort::Object]).unwrap_err();
        assert!(matches!(e, CoreError::SignatureConflict { .. }));
    }

    #[test]
    fn sorts_are_separate_namespaces() {
        let mut v = Vocabulary::new();
        let o = v.obj("a");
        let u = v.ord("a");
        assert_eq!(v.obj_name(o), "a");
        assert_eq!(v.ord_name(u), "a");
        assert_eq!(v.obj_count(), 1);
        assert_eq!(v.ord_count(), 1);
    }

    #[test]
    fn fresh_names_do_not_collide() {
        let mut v = Vocabulary::new();
        v.ord("$u0"); // occupy the first candidate name
        let f1 = v.fresh_ord("u");
        let f2 = v.fresh_ord("u");
        assert_ne!(f1, f2);
        assert_ne!(v.ord_name(f1), "$u0");
    }

    #[test]
    fn monadic_detection() {
        let mut v = Vocabulary::new();
        v.monadic_pred("P");
        assert!(v.all_monadic_order());
        v.pred("R", &[Sort::Order, Sort::Order]).unwrap();
        assert!(!v.all_monadic_order());
        assert!(v.signature(v.find_pred("P").unwrap()).is_monadic_order());
        assert!(!v.signature(v.find_pred("R").unwrap()).is_monadic_order());
    }

    #[test]
    fn lookup_misses() {
        let v = Vocabulary::new();
        assert!(v.find_pred("nope").is_none());
        assert!(v.find_obj("nope").is_none());
        assert!(v.find_ord("nope").is_none());
    }

    #[test]
    fn mark_truncate_rolls_back_speculative_interning() {
        let mut v = Vocabulary::new();
        let p = v.monadic_pred("P");
        let u = v.ord("u");
        let mark = v.mark();
        assert!(!v.changed_since(mark));

        // Speculative parse: new pred, ord, obj, and a fresh name.
        v.monadic_pred("Q");
        v.ord("w");
        v.obj("o");
        let f = v.fresh_ord("tmp");
        assert!(v.changed_since(mark));
        let fresh_name = v.ord_name(f).to_string();

        v.truncate(mark);
        assert!(!v.changed_since(mark));
        assert!(v.find_pred("Q").is_none());
        assert!(v.find_ord("w").is_none());
        assert!(v.find_obj("o").is_none());
        assert!(v.find_ord(&fresh_name).is_none());
        // Pre-mark symbols keep their ids and names.
        assert_eq!(v.find_pred("P"), Some(p));
        assert_eq!(v.find_ord("u"), Some(u));
        assert_eq!(v.pred_count(), 1);
        assert_eq!(v.ord_count(), 1);
        assert_eq!(v.obj_count(), 0);

        // Re-interning after a rollback reuses the freed dense ids, and
        // the fresh counter restarts from the marked value.
        let q = v.monadic_pred("Q");
        assert_eq!(q.index(), 1);
        let f2 = v.fresh_ord("tmp");
        assert_eq!(v.ord_name(f2), fresh_name);
    }
}
