//! A fast, non-cryptographic hasher for small integer-shaped keys.
//!
//! The entailment engines intern antichains, pointer tuples, and packed
//! search states, and probe those tables once per explored transition —
//! millions of times on a large Theorem 5.3 search. `std`'s default
//! SipHash is DoS-resistant but pays ~1–2 ns per written word plus
//! finalization; for trusted, in-process keys that cost dominates the
//! table lookups themselves. This module provides the classic `FxHasher`
//! (the rustc/Firefox hash): one multiply and one rotate per word, no
//! finalization rounds.
//!
//! Use [`FxHashMap`] / [`FxHashSet`] wherever the keys come from inside
//! the process (vertex ids, interned symbols, packed states). Keep
//! SipHash for maps keyed by untrusted external input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash scheme (a close relative of the golden
/// ratio in 64 bits, chosen to mix high bits down).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one `u64`, folded with rotate-xor-multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s (stateless, zero-sized).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn byte_tails_differ() {
        // Unequal short slices must not collide via zero-padding alone.
        assert_ne!(hash_of(&[1u8, 0]), hash_of(&[1u8, 0, 0]));
        assert_eq!(hash_of(b"abcdefgh!"), hash_of(b"abcdefgh!"));
    }

    #[test]
    fn maps_work() {
        let mut m: FxHashMap<(u32, u32), usize> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(10, 70)], 10);
        let s: FxHashSet<u64> = (0..100).collect();
        assert!(s.contains(&99));
    }
}
