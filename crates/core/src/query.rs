//! Positive existential queries.
//!
//! Queries are built from proper atoms and order atoms with `∧`, `∨`, `∃`
//! (§2). For complexity analysis the paper assumes queries in disjunctive
//! normal form; [`QueryExpr::to_dnf`] performs the conversion, producing a
//! [`DnfQuery`] of normalized [`ConjunctiveQuery`] disjuncts.
//!
//! Implemented transforms from §2 of the paper:
//!
//! * **constant elimination** — queries are assumed constant-free; a query
//!   with constants is rewritten using a fresh monadic predicate `P_u` per
//!   constant, and the facts `P_u(u)` are adjoined to the database
//!   ([`eliminate_constants`]);
//! * **normalization N1/N2** on each disjunct (merging `<=`-cycles of
//!   variables, deleting `t <= t`), dropping unsatisfiable disjuncts;
//! * **tightness** (Prop. 2.2) — every order variable of every disjunct
//!   occurs in a proper atom;
//! * **fullness** — each disjunct closed under the derived-atom rules —
//!   and the companion transform dropping order-only variables
//!   (Lemma 2.5), used by the `|=_Q` reduction.

use crate::atom::OrderRel;
use crate::database::Database;
use crate::error::{CoreError, Result};
use crate::ordgraph::OrderGraph;
use crate::sym::{ObjSym, OrdSym, PredSym, Sort, Vocabulary};
use std::collections::HashMap;
use std::fmt;

/// A term inside a (not yet normalized) query: a named variable or a
/// constant of either sort.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum QTerm {
    /// A variable (sort inferred from use).
    Var(String),
    /// An object constant.
    ObjConst(ObjSym),
    /// An order constant.
    OrdConst(OrdSym),
}

/// A positive existential query expression.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// Conjunction.
    And(Vec<QueryExpr>),
    /// Disjunction.
    Or(Vec<QueryExpr>),
    /// Existential quantification over named variables.
    Exists(Vec<String>, Box<QueryExpr>),
    /// A proper atom `P(t₁,…,tₙ)`.
    Proper {
        /// The predicate.
        pred: PredSym,
        /// Argument terms.
        args: Vec<QTerm>,
    },
    /// An order atom `s R t`.
    Order {
        /// Left term (must be of order sort).
        lhs: QTerm,
        /// Relation.
        rel: OrderRel,
        /// Right term.
        rhs: QTerm,
    },
}

impl QueryExpr {
    /// `lhs < rhs` between named variables.
    pub fn lt(lhs: &str, rhs: &str) -> QueryExpr {
        QueryExpr::Order {
            lhs: QTerm::Var(lhs.into()),
            rel: OrderRel::Lt,
            rhs: QTerm::Var(rhs.into()),
        }
    }

    /// `lhs <= rhs` between named variables.
    pub fn le(lhs: &str, rhs: &str) -> QueryExpr {
        QueryExpr::Order {
            lhs: QTerm::Var(lhs.into()),
            rel: OrderRel::Le,
            rhs: QTerm::Var(rhs.into()),
        }
    }

    /// `lhs != rhs` between named variables (§7).
    pub fn ne(lhs: &str, rhs: &str) -> QueryExpr {
        QueryExpr::Order {
            lhs: QTerm::Var(lhs.into()),
            rel: OrderRel::Ne,
            rhs: QTerm::Var(rhs.into()),
        }
    }

    /// A monadic proper atom `P(x)` on a named variable.
    pub fn atom1(pred: PredSym, var: &str) -> QueryExpr {
        QueryExpr::Proper {
            pred,
            args: vec![QTerm::Var(var.into())],
        }
    }

    /// Converts to disjunctive normal form and normalizes each disjunct.
    ///
    /// Unsatisfiable disjuncts (whose order atoms are cyclic through `<`)
    /// are dropped; a query all of whose disjuncts are unsatisfiable yields
    /// an empty [`DnfQuery`], which no database entails.
    pub fn to_dnf(&self, voc: &Vocabulary) -> Result<DnfQuery> {
        // 1. Flatten to a disjunction of atom lists, tracking scopes.
        let mut disjuncts: Vec<Vec<FlatAtom>> = vec![Vec::new()];
        flatten(self, &mut Vec::new(), &mut disjuncts)?;
        // 2. Build conjunctive queries.
        let mut out = Vec::new();
        for atoms in disjuncts {
            if let Some(cq) = ConjunctiveQuery::from_flat(voc, &atoms)? {
                out.push(cq);
            }
        }
        Ok(DnfQuery { disjuncts: out })
    }
}

/// An atom with scope-resolved variables, produced during DNF flattening.
#[derive(Debug, Clone)]
enum FlatAtom {
    Proper {
        pred: PredSym,
        args: Vec<FlatTerm>,
    },
    Order {
        lhs: FlatTerm,
        rel: OrderRel,
        rhs: FlatTerm,
    },
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum FlatTerm {
    /// Scope-unique variable id (name, disambiguator).
    Var(String, usize),
    ObjConst(ObjSym),
    OrdConst(OrdSym),
}

/// Recursive DNF flattening. `scope` maps visible variable names to unique
/// ids; `acc` is the current set of partial disjuncts (conjunctions built
/// so far) — atoms are appended to every partial disjunct, and `Or` nodes
/// fork the set.
fn flatten(
    e: &QueryExpr,
    scope: &mut Vec<(String, usize)>,
    acc: &mut Vec<Vec<FlatAtom>>,
) -> Result<()> {
    fn resolve(t: &QTerm, scope: &[(String, usize)]) -> Result<FlatTerm> {
        match t {
            QTerm::Var(n) => scope
                .iter()
                .rev()
                .find(|(m, _)| m == n)
                .map(|(n, i)| FlatTerm::Var(n.clone(), *i))
                .ok_or_else(|| CoreError::UnboundVariable { name: n.clone() }),
            QTerm::ObjConst(o) => Ok(FlatTerm::ObjConst(*o)),
            QTerm::OrdConst(u) => Ok(FlatTerm::OrdConst(*u)),
        }
    }

    match e {
        QueryExpr::Proper { pred, args } => {
            let args = args
                .iter()
                .map(|t| resolve(t, scope))
                .collect::<Result<Vec<_>>>()?;
            for d in acc.iter_mut() {
                d.push(FlatAtom::Proper {
                    pred: *pred,
                    args: args.clone(),
                });
            }
            Ok(())
        }
        QueryExpr::Order { lhs, rel, rhs } => {
            let l = resolve(lhs, scope)?;
            let r = resolve(rhs, scope)?;
            for d in acc.iter_mut() {
                d.push(FlatAtom::Order {
                    lhs: l.clone(),
                    rel: *rel,
                    rhs: r.clone(),
                });
            }
            Ok(())
        }
        QueryExpr::And(parts) => {
            for p in parts {
                flatten(p, scope, acc)?;
            }
            Ok(())
        }
        QueryExpr::Or(parts) => {
            let base = acc.clone();
            let mut all = Vec::new();
            for p in parts {
                let mut branch = base.clone();
                flatten(p, scope, &mut branch)?;
                all.extend(branch);
            }
            *acc = all;
            Ok(())
        }
        QueryExpr::Exists(names, body) => {
            let mark = scope.len();
            for n in names {
                // Each quantifier introduction gets a globally fresh id so
                // that shadowing and re-use of names across scopes cannot
                // collide.
                scope.push((n.clone(), fresh_var_id()));
            }
            flatten(body, scope, acc)?;
            scope.truncate(mark);
            Ok(())
        }
    }
}

fn fresh_var_id() -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// An argument of a proper atom in a normalized conjunctive query: a
/// variable index of the appropriate sort. Constants have been eliminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QArg {
    /// Object variable (index into the disjunct's object variables).
    Obj(u32),
    /// Order variable (index into the disjunct's order variables).
    Ord(u32),
}

/// A proper atom of a normalized conjunctive query.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryAtom {
    /// The predicate.
    pub pred: PredSym,
    /// Variable arguments.
    pub args: Vec<QArg>,
}

/// A normalized conjunctive query: dense object/order variables, proper
/// atoms over variables, and order atoms between order variables. The
/// order atoms form a consistent dag (N1/N2 applied at construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Number of object variables.
    pub n_obj_vars: usize,
    /// Number of order variables.
    pub n_ord_vars: usize,
    /// Proper atoms.
    pub proper: Vec<QueryAtom>,
    /// Order atoms `(s, rel, t)` over order-variable indices. `Ne` atoms
    /// appear only when the §7 extension is in use.
    pub order: Vec<(u32, OrderRel, u32)>,
}

impl ConjunctiveQuery {
    /// Builds from flattened atoms; returns `None` when the disjunct is
    /// unsatisfiable (dropped from the DNF).
    fn from_flat(voc: &Vocabulary, atoms: &[FlatAtom]) -> Result<Option<ConjunctiveQuery>> {
        // Infer variable sorts, assign dense indices. Constants are kept as
        // pseudo-variables here and must be eliminated before engines run;
        // we reject them to keep this constructor total — the public
        // constant path goes through `DnfQuery::eliminate_constants`, which
        // rewrites FlatTerm constants into variables beforehand. To support
        // that, map constants to reserved variable slots is not needed:
        // the parser and builders call eliminate on the QueryExpr level.
        let mut obj_index: HashMap<FlatTerm, u32> = HashMap::new();
        let mut ord_index: HashMap<FlatTerm, u32> = HashMap::new();
        let mut proper = Vec::new();
        let mut order = Vec::new();

        let intern_obj = |t: &FlatTerm, obj_index: &mut HashMap<FlatTerm, u32>| {
            let next = obj_index.len() as u32;
            *obj_index.entry(t.clone()).or_insert(next)
        };
        let intern_ord = |t: &FlatTerm, ord_index: &mut HashMap<FlatTerm, u32>| {
            let next = ord_index.len() as u32;
            *ord_index.entry(t.clone()).or_insert(next)
        };

        // First pass: sort inference for variables; conflict check.
        let mut sorts: HashMap<FlatTerm, Sort> = HashMap::new();
        let mut record = |t: &FlatTerm, s: Sort, pred: &str| -> Result<()> {
            match t {
                FlatTerm::Var(..) => {
                    if let Some(&prev) = sorts.get(t) {
                        if prev != s {
                            return Err(CoreError::SortMismatch {
                                pred: pred.to_string(),
                                position: 0,
                                expected: prev,
                            });
                        }
                    } else {
                        sorts.insert(t.clone(), s);
                    }
                    Ok(())
                }
                FlatTerm::ObjConst(_) if s == Sort::Object => Ok(()),
                FlatTerm::OrdConst(_) if s == Sort::Order => Ok(()),
                _ => Err(CoreError::SortMismatch {
                    pred: pred.to_string(),
                    position: 0,
                    expected: s,
                }),
            }
        };
        for a in atoms {
            match a {
                FlatAtom::Proper { pred, args } => {
                    let sig = voc.signature(*pred);
                    if sig.arity() != args.len() {
                        return Err(CoreError::ArityMismatch {
                            pred: voc.pred_name(*pred).to_string(),
                            expected: sig.arity(),
                            found: args.len(),
                        });
                    }
                    for (t, &s) in args.iter().zip(&sig.arg_sorts) {
                        record(t, s, voc.pred_name(*pred))?;
                    }
                }
                FlatAtom::Order { lhs, rhs, .. } => {
                    record(lhs, Sort::Order, "<order>")?;
                    record(rhs, Sort::Order, "<order>")?;
                }
            }
        }

        // Constants must have been eliminated already.
        for a in atoms {
            let terms: Vec<&FlatTerm> = match a {
                FlatAtom::Proper { args, .. } => args.iter().collect(),
                FlatAtom::Order { lhs, rhs, .. } => vec![lhs, rhs],
            };
            for t in terms {
                if !matches!(t, FlatTerm::Var(..)) {
                    return Err(CoreError::Parse {
                        span: crate::error::Span::NONE,
                        message: "query contains constants; call eliminate_constants first"
                            .to_string(),
                    });
                }
            }
        }

        // Second pass: build with dense indices.
        for a in atoms {
            match a {
                FlatAtom::Proper { pred, args } => {
                    let sig = voc.signature(*pred);
                    let mut qargs = Vec::with_capacity(args.len());
                    for (t, &s) in args.iter().zip(&sig.arg_sorts) {
                        let qa = match s {
                            Sort::Object => QArg::Obj(intern_obj(t, &mut obj_index)),
                            Sort::Order => QArg::Ord(intern_ord(t, &mut ord_index)),
                        };
                        qargs.push(qa);
                    }
                    proper.push(QueryAtom {
                        pred: *pred,
                        args: qargs,
                    });
                }
                FlatAtom::Order { lhs, rel, rhs } => {
                    let l = intern_ord(lhs, &mut ord_index);
                    let r = intern_ord(rhs, &mut ord_index);
                    order.push((l, *rel, r));
                }
            }
        }

        let cq = ConjunctiveQuery {
            n_obj_vars: obj_index.len(),
            n_ord_vars: ord_index.len(),
            proper,
            order,
        };
        Ok(cq.normalized())
    }

    /// Applies N1/N2 to the order variables; returns `None` if the disjunct
    /// is unsatisfiable (a `<` cycle).
    pub fn normalized(&self) -> Option<ConjunctiveQuery> {
        let edges: Vec<(usize, usize, OrderRel)> = self
            .order
            .iter()
            .filter(|(_, r, _)| *r != OrderRel::Ne)
            .map(|&(l, rel, r)| (l as usize, r as usize, rel))
            .collect();
        let nz = OrderGraph::normalize(self.n_ord_vars, &edges).ok()?;
        let mut order: Vec<(u32, OrderRel, u32)> = nz
            .graph
            .edges()
            .map(|(u, v, rel)| (u as u32, rel, v as u32))
            .collect();
        // `!=` atoms between merged variables make the disjunct unsat.
        for &(l, rel, r) in &self.order {
            if rel == OrderRel::Ne {
                let (cl, cr) = (nz.class_of[l as usize], nz.class_of[r as usize]);
                if cl == cr {
                    return None;
                }
                order.push((cl as u32, OrderRel::Ne, cr as u32));
            }
        }
        order.sort_unstable();
        order.dedup();
        let proper = self
            .proper
            .iter()
            .map(|a| QueryAtom {
                pred: a.pred,
                args: a
                    .args
                    .iter()
                    .map(|qa| match *qa {
                        QArg::Obj(i) => QArg::Obj(i),
                        QArg::Ord(i) => QArg::Ord(nz.class_of[i as usize] as u32),
                    })
                    .collect(),
            })
            .collect();
        Some(
            ConjunctiveQuery {
                n_obj_vars: self.n_obj_vars,
                n_ord_vars: nz.graph.len(),
                proper,
                order,
            }
            .display_canonical(),
        )
    }

    /// Renumbers variables into the *display-canonical* numbering: the
    /// first-occurrence order of a scan over the proper atoms followed by
    /// the sorted order atoms — exactly the sequence
    /// [`ConjunctiveQuery::display`] emits and the parser re-interns. On
    /// this numbering `parse ∘ display` is the identity (pinned by the
    /// `parse_props` suite); without it, DNF distribution can leave a
    /// disjunct numbered by an atom order the display no longer shows.
    ///
    /// Renumbering order variables re-sorts the order atoms, which can
    /// change their occurrence sequence again, so the pass iterates to a
    /// fixpoint (tiny in practice: one or two rounds).
    fn display_canonical(mut self) -> ConjunctiveQuery {
        // Object variables occur only in proper atoms: one pass suffices.
        let mut obj_map: Vec<Option<u32>> = vec![None; self.n_obj_vars];
        let mut next_obj = 0u32;
        for a in &self.proper {
            for qa in &a.args {
                if let QArg::Obj(i) = qa {
                    obj_map[*i as usize].get_or_insert_with(|| {
                        let n = next_obj;
                        next_obj += 1;
                        n
                    });
                }
            }
        }
        // Variables never mentioned (possible only in hand-built queries)
        // keep the remaining numbers in index order.
        for m in &mut obj_map {
            m.get_or_insert_with(|| {
                let n = next_obj;
                next_obj += 1;
                n
            });
        }
        for a in &mut self.proper {
            for qa in &mut a.args {
                if let QArg::Obj(i) = qa {
                    *i = obj_map[*i as usize].expect("assigned above");
                }
            }
        }
        // Order variables: iterate renumber + re-sort to a fixpoint.
        for _ in 0..=self.n_ord_vars {
            let mut map: Vec<Option<u32>> = vec![None; self.n_ord_vars];
            let mut next = 0u32;
            let mut visit = |i: u32, map: &mut Vec<Option<u32>>| {
                map[i as usize].get_or_insert_with(|| {
                    let n = next;
                    next += 1;
                    n
                });
            };
            for a in &self.proper {
                for qa in &a.args {
                    if let QArg::Ord(i) = qa {
                        visit(*i, &mut map);
                    }
                }
            }
            for &(l, _, r) in &self.order {
                visit(l, &mut map);
                visit(r, &mut map);
            }
            for m in &mut map {
                m.get_or_insert_with(|| {
                    let n = next;
                    next += 1;
                    n
                });
            }
            if map.iter().enumerate().all(|(i, m)| *m == Some(i as u32)) {
                break;
            }
            let apply = |i: u32, map: &[Option<u32>]| map[i as usize].expect("assigned above");
            for a in &mut self.proper {
                for qa in &mut a.args {
                    if let QArg::Ord(i) = qa {
                        *i = apply(*i, &map);
                    }
                }
            }
            for e in &mut self.order {
                e.0 = apply(e.0, &map);
                e.2 = apply(e.2, &map);
            }
            self.order.sort_unstable();
        }
        self
    }

    /// The order dag of the disjunct (`!=` atoms excluded).
    pub fn order_graph(&self) -> OrderGraph {
        let edges: Vec<(usize, usize, OrderRel)> = self
            .order
            .iter()
            .filter(|(_, r, _)| *r != OrderRel::Ne)
            .map(|&(l, rel, r)| (l as usize, r as usize, rel))
            .collect();
        OrderGraph::from_dag_edges(self.n_ord_vars, &edges)
            .expect("normalized disjunct must be acyclic")
    }

    /// Number of atoms (the size measure `|Φ|`).
    pub fn len(&self) -> usize {
        self.proper.len() + self.order.len()
    }

    /// True when there are no atoms at all (the empty query, which every
    /// database entails).
    pub fn is_empty(&self) -> bool {
        self.proper.is_empty() && self.order.is_empty()
    }

    /// **Tightness** (Prop. 2.2): every order variable occurs in some
    /// proper atom.
    pub fn is_tight(&self) -> bool {
        let mut in_proper = vec![false; self.n_ord_vars];
        for a in &self.proper {
            for qa in &a.args {
                if let QArg::Ord(i) = qa {
                    in_proper[*i as usize] = true;
                }
            }
        }
        in_proper.iter().all(|&b| b)
    }

    /// **Sequentiality** (§1, §4): the order variables are linearly ordered
    /// by the order atoms — the order dag has width ≤ 1. Queries with `!=`
    /// atoms are never sequential in the paper's sense.
    pub fn is_sequential(&self) -> bool {
        if self.order.iter().any(|(_, r, _)| *r == OrderRel::Ne) {
            return false;
        }
        self.n_ord_vars <= 1 || self.order_graph().width() <= 1
    }

    /// Width of the disjunct's order dag.
    pub fn width(&self) -> usize {
        self.order_graph().width()
    }

    /// **Fullness** closure (§2): adds every derived order atom.
    pub fn to_full(&self) -> ConjunctiveQuery {
        let g = self.order_graph().full_closure();
        let mut order: Vec<(u32, OrderRel, u32)> = g
            .edges()
            .map(|(u, v, rel)| (u as u32, rel, v as u32))
            .collect();
        for &(l, rel, r) in &self.order {
            if rel == OrderRel::Ne {
                order.push((l, rel, r));
            }
        }
        order.sort_unstable();
        order.dedup();
        ConjunctiveQuery {
            order,
            ..self.clone()
        }
    }

    /// Lemma 2.5 transform: assuming the disjunct is full, deletes order
    /// variables that occur in no proper atom, together with their order
    /// atoms, renumbering the remaining variables.
    pub fn drop_order_only_vars(&self) -> ConjunctiveQuery {
        let mut in_proper = vec![false; self.n_ord_vars];
        for a in &self.proper {
            for qa in &a.args {
                if let QArg::Ord(i) = qa {
                    in_proper[*i as usize] = true;
                }
            }
        }
        let mut remap = vec![u32::MAX; self.n_ord_vars];
        let mut next = 0u32;
        for (i, &keep) in in_proper.iter().enumerate() {
            if keep {
                remap[i] = next;
                next += 1;
            }
        }
        let order = self
            .order
            .iter()
            .filter(|&&(l, _, r)| in_proper[l as usize] && in_proper[r as usize])
            .map(|&(l, rel, r)| (remap[l as usize], rel, remap[r as usize]))
            .collect();
        let proper = self
            .proper
            .iter()
            .map(|a| QueryAtom {
                pred: a.pred,
                args: a
                    .args
                    .iter()
                    .map(|qa| match *qa {
                        QArg::Obj(i) => QArg::Obj(i),
                        QArg::Ord(i) => QArg::Ord(remap[i as usize]),
                    })
                    .collect(),
            })
            .collect();
        ConjunctiveQuery {
            n_obj_vars: self.n_obj_vars,
            n_ord_vars: next as usize,
            proper,
            order,
        }
    }

    /// Eliminates `!=` atoms by expanding each into the disjunction
    /// `u < v ∨ v < u` (§7). The result has `2^m` disjuncts for `m`
    /// inequality atoms; `cap` guards the blow-up.
    pub fn eliminate_ne(&self, cap: usize) -> Result<Vec<ConjunctiveQuery>> {
        let ne: Vec<(u32, u32)> = self
            .order
            .iter()
            .filter(|(_, r, _)| *r == OrderRel::Ne)
            .map(|&(l, _, r)| (l, r))
            .collect();
        if ne.is_empty() {
            return Ok(vec![self.clone()]);
        }
        if 1usize.checked_shl(ne.len() as u32).is_none_or(|n| n > cap) {
            return Err(CoreError::CapExceeded {
                what: "!= elimination".to_string(),
                limit: cap,
            });
        }
        let base: Vec<(u32, OrderRel, u32)> = self
            .order
            .iter()
            .filter(|(_, r, _)| *r != OrderRel::Ne)
            .copied()
            .collect();
        let mut out = Vec::new();
        for mask in 0..(1usize << ne.len()) {
            let mut order = base.clone();
            for (bit, &(l, r)) in ne.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    order.push((l, OrderRel::Lt, r));
                } else {
                    order.push((r, OrderRel::Lt, l));
                }
            }
            let cand = ConjunctiveQuery {
                order,
                ..self.clone()
            };
            if let Some(n) = cand.normalized() {
                out.push(n);
            }
        }
        Ok(out)
    }

    /// Renders the disjunct with invented variable names `x0…`, `t0…`.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        DisplayCq { cq: self, voc }
    }
}

struct DisplayCq<'a> {
    cq: &'a ConjunctiveQuery,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayCq<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exists")?;
        for i in 0..self.cq.n_obj_vars {
            write!(f, " x{i}")?;
        }
        for i in 0..self.cq.n_ord_vars {
            write!(f, " t{i}")?;
        }
        write!(f, ". ")?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, " & ")?;
            }
            first = false;
            Ok(())
        };
        for a in &self.cq.proper {
            sep(f)?;
            write!(f, "{}(", self.voc.pred_name(a.pred))?;
            for (i, qa) in a.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match qa {
                    QArg::Obj(v) => write!(f, "x{v}")?,
                    QArg::Ord(v) => write!(f, "t{v}")?,
                }
            }
            write!(f, ")")?;
        }
        for &(l, rel, r) in &self.cq.order {
            sep(f)?;
            write!(f, "t{l} {rel} t{r}")?;
        }
        // Order variables occurring in no atom (e.g. the residue of a
        // normalized-away `b <= b`) still assert that a point exists:
        // render them as tautological self-guards so the binder
        // round-trips through the parser instead of vanishing.
        let mut seen = vec![false; self.cq.n_ord_vars];
        for a in &self.cq.proper {
            for qa in &a.args {
                if let QArg::Ord(i) = qa {
                    seen[*i as usize] = true;
                }
            }
        }
        for &(l, _, r) in &self.cq.order {
            seen[l as usize] = true;
            seen[r as usize] = true;
        }
        for (i, used) in seen.iter().enumerate() {
            if !used {
                sep(f)?;
                write!(f, "t{i} <= t{i}")?;
            }
        }
        if first {
            write!(f, "true")?;
        }
        Ok(())
    }
}

/// A query in disjunctive normal form: a disjunction of normalized
/// conjunctive queries. The empty disjunction is the unsatisfiable query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DnfQuery {
    /// The disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl DnfQuery {
    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// A conjunctive query viewed as a one-disjunct DNF.
    pub fn conjunctive(cq: ConjunctiveQuery) -> DnfQuery {
        DnfQuery {
            disjuncts: vec![cq],
        }
    }

    /// True when every disjunct is tight (Prop. 2.2 applies).
    pub fn is_tight(&self) -> bool {
        self.disjuncts.iter().all(ConjunctiveQuery::is_tight)
    }

    /// True when the query is conjunctive (at most one disjunct).
    pub fn is_conjunctive(&self) -> bool {
        self.disjuncts.len() <= 1
    }

    /// Fullness closure applied to every disjunct.
    pub fn to_full(&self) -> DnfQuery {
        DnfQuery {
            disjuncts: self
                .disjuncts
                .iter()
                .map(ConjunctiveQuery::to_full)
                .collect(),
        }
    }

    /// Disjunction of two queries.
    pub fn or(mut self, other: DnfQuery) -> DnfQuery {
        self.disjuncts.extend(other.disjuncts);
        self
    }

    /// Total size `|Φ|`.
    pub fn len(&self) -> usize {
        self.disjuncts.iter().map(ConjunctiveQuery::len).sum()
    }

    /// True when there are no disjuncts (the false query).
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Renders the query.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        DisplayDnf { q: self, voc }
    }
}

struct DisplayDnf<'a> {
    q: &'a DnfQuery,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayDnf<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.q.disjuncts.is_empty() {
            return write!(f, "false");
        }
        for (i, d) in self.q.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "({})", d.display(self.voc))?;
        }
        Ok(())
    }
}

/// Constant elimination (§2): rewrites a [`QueryExpr`] that may mention
/// constants into a constant-free one, adjoining facts `P_u(u)` to a copy
/// of the database. Returns the augmented database and the DNF of the
/// rewritten query.
///
/// For each object constant `a` a fresh monadic predicate `$Pa` over the
/// object sort is introduced with fact `$Pa(a)`; likewise per order
/// constant with an order-sorted monadic predicate. Every occurrence of the
/// constant becomes a fresh existential variable guarded by the predicate.
pub fn eliminate_constants(
    voc: &mut Vocabulary,
    db: &Database,
    query: &QueryExpr,
) -> Result<(Database, DnfQuery)> {
    let mut new_db = db.clone();
    let mut obj_guard: HashMap<ObjSym, (PredSym, String)> = HashMap::new();
    let mut ord_guard: HashMap<OrdSym, (PredSym, String)> = HashMap::new();
    let mut counter = 0usize;

    fn rewrite(
        e: &QueryExpr,
        voc: &mut Vocabulary,
        new_db: &mut Database,
        obj_guard: &mut HashMap<ObjSym, (PredSym, String)>,
        ord_guard: &mut HashMap<OrdSym, (PredSym, String)>,
        counter: &mut usize,
    ) -> Result<QueryExpr> {
        let mut guards: Vec<QueryExpr> = Vec::new();
        let mut fresh_vars: Vec<String> = Vec::new();
        let handle = |t: &QTerm,
                      voc: &mut Vocabulary,
                      new_db: &mut Database,
                      obj_guard: &mut HashMap<ObjSym, (PredSym, String)>,
                      ord_guard: &mut HashMap<OrdSym, (PredSym, String)>,
                      counter: &mut usize,
                      guards: &mut Vec<QueryExpr>,
                      fresh_vars: &mut Vec<String>|
         -> Result<QTerm> {
            match t {
                QTerm::Var(_) => Ok(t.clone()),
                QTerm::ObjConst(o) => {
                    let (pred, var) = obj_guard
                        .entry(*o)
                        .or_insert_with(|| {
                            let p = voc.fresh_pred("guard_obj", &[Sort::Object]);
                            let v = format!("$c{}", {
                                *counter += 1;
                                *counter
                            });
                            new_db.push_proper(crate::atom::ProperAtom {
                                pred: p,
                                args: vec![crate::atom::Term::Obj(*o)],
                            });
                            (p, v)
                        })
                        .clone();
                    if !fresh_vars.contains(&var) {
                        fresh_vars.push(var.clone());
                        guards.push(QueryExpr::Proper {
                            pred,
                            args: vec![QTerm::Var(var.clone())],
                        });
                    }
                    Ok(QTerm::Var(var))
                }
                QTerm::OrdConst(u) => {
                    let (pred, var) = ord_guard
                        .entry(*u)
                        .or_insert_with(|| {
                            let p = voc.fresh_pred("guard_ord", &[Sort::Order]);
                            let v = format!("$c{}", {
                                *counter += 1;
                                *counter
                            });
                            new_db.push_proper(crate::atom::ProperAtom {
                                pred: p,
                                args: vec![crate::atom::Term::Ord(*u)],
                            });
                            (p, v)
                        })
                        .clone();
                    if !fresh_vars.contains(&var) {
                        fresh_vars.push(var.clone());
                        guards.push(QueryExpr::Proper {
                            pred,
                            args: vec![QTerm::Var(var.clone())],
                        });
                    }
                    Ok(QTerm::Var(var))
                }
            }
        };

        let core = match e {
            QueryExpr::Proper { pred, args } => {
                let args = args
                    .iter()
                    .map(|t| {
                        handle(
                            t,
                            voc,
                            new_db,
                            obj_guard,
                            ord_guard,
                            counter,
                            &mut guards,
                            &mut fresh_vars,
                        )
                    })
                    .collect::<Result<Vec<_>>>()?;
                QueryExpr::Proper { pred: *pred, args }
            }
            QueryExpr::Order { lhs, rel, rhs } => {
                let l = handle(
                    lhs,
                    voc,
                    new_db,
                    obj_guard,
                    ord_guard,
                    counter,
                    &mut guards,
                    &mut fresh_vars,
                )?;
                let r = handle(
                    rhs,
                    voc,
                    new_db,
                    obj_guard,
                    ord_guard,
                    counter,
                    &mut guards,
                    &mut fresh_vars,
                )?;
                QueryExpr::Order {
                    lhs: l,
                    rel: *rel,
                    rhs: r,
                }
            }
            QueryExpr::And(ps) => QueryExpr::And(
                ps.iter()
                    .map(|p| rewrite(p, voc, new_db, obj_guard, ord_guard, counter))
                    .collect::<Result<Vec<_>>>()?,
            ),
            QueryExpr::Or(ps) => QueryExpr::Or(
                ps.iter()
                    .map(|p| rewrite(p, voc, new_db, obj_guard, ord_guard, counter))
                    .collect::<Result<Vec<_>>>()?,
            ),
            QueryExpr::Exists(names, body) => QueryExpr::Exists(
                names.clone(),
                Box::new(rewrite(body, voc, new_db, obj_guard, ord_guard, counter)?),
            ),
        };
        if guards.is_empty() {
            Ok(core)
        } else {
            let mut parts = guards;
            parts.push(core);
            Ok(QueryExpr::Exists(
                fresh_vars,
                Box::new(QueryExpr::And(parts)),
            ))
        }
    }

    let rewritten = rewrite(
        query,
        voc,
        &mut new_db,
        &mut obj_guard,
        &mut ord_guard,
        &mut counter,
    )?;
    let dnf = rewritten.to_dnf(voc)?;
    Ok((new_db, dnf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voc() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.monadic_pred("P");
        v.monadic_pred("Q");
        v.monadic_pred("R");
        v
    }

    fn p(v: &Vocabulary, name: &str) -> PredSym {
        v.find_pred(name).unwrap()
    }

    #[test]
    fn simple_conjunctive_to_dnf() {
        let v = voc();
        let e = QueryExpr::Exists(
            vec!["s".into(), "t".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::atom1(p(&v, "P"), "s"),
                QueryExpr::lt("s", "t"),
                QueryExpr::atom1(p(&v, "Q"), "t"),
            ])),
        );
        let d = e.to_dnf(&v).unwrap();
        assert_eq!(d.disjuncts.len(), 1);
        let cq = &d.disjuncts[0];
        assert_eq!(cq.n_ord_vars, 2);
        assert_eq!(cq.proper.len(), 2);
        assert_eq!(cq.order.len(), 1);
        assert!(cq.is_tight());
        assert!(cq.is_sequential());
    }

    #[test]
    fn disjunction_distributes() {
        let v = voc();
        // exists t. P(t) & (Q(t) | R(t))  →  two disjuncts
        let e = QueryExpr::Exists(
            vec!["t".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::atom1(p(&v, "P"), "t"),
                QueryExpr::Or(vec![
                    QueryExpr::atom1(p(&v, "Q"), "t"),
                    QueryExpr::atom1(p(&v, "R"), "t"),
                ]),
            ])),
        );
        let d = e.to_dnf(&v).unwrap();
        assert_eq!(d.disjuncts.len(), 2);
        for cq in &d.disjuncts {
            assert_eq!(cq.proper.len(), 2);
            assert_eq!(cq.n_ord_vars, 1);
        }
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let v = voc();
        let e = QueryExpr::atom1(p(&v, "P"), "t");
        assert!(matches!(
            e.to_dnf(&v),
            Err(CoreError::UnboundVariable { .. })
        ));
    }

    #[test]
    fn unsatisfiable_disjunct_dropped() {
        let v = voc();
        // exists s t. s < t & t < s   is unsatisfiable
        let e = QueryExpr::Exists(
            vec!["s".into(), "t".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::lt("s", "t"),
                QueryExpr::lt("t", "s"),
            ])),
        );
        let d = e.to_dnf(&v).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn n1_merges_le_cycle_variables() {
        let v = voc();
        // exists s t. s <= t & t <= s & P(s) & Q(t) — s,t identified.
        let e = QueryExpr::Exists(
            vec!["s".into(), "t".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::le("s", "t"),
                QueryExpr::le("t", "s"),
                QueryExpr::atom1(p(&v, "P"), "s"),
                QueryExpr::atom1(p(&v, "Q"), "t"),
            ])),
        );
        let d = e.to_dnf(&v).unwrap();
        let cq = &d.disjuncts[0];
        assert_eq!(cq.n_ord_vars, 1);
        assert!(cq.order.is_empty());
        assert_eq!(cq.proper.len(), 2);
    }

    #[test]
    fn tightness_detects_order_only_variables() {
        let v = voc();
        // exists t1 t2 t3. P(t1) & t1 < t2 & t2 < t3 & P(t3): t2 not tight.
        let e = QueryExpr::Exists(
            vec!["t1".into(), "t2".into(), "t3".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::atom1(p(&v, "P"), "t1"),
                QueryExpr::lt("t1", "t2"),
                QueryExpr::lt("t2", "t3"),
                QueryExpr::atom1(p(&v, "P"), "t3"),
            ])),
        );
        let d = e.to_dnf(&v).unwrap();
        assert!(!d.is_tight());
        let full = d.disjuncts[0].to_full();
        let dropped = full.drop_order_only_vars();
        assert_eq!(dropped.n_ord_vars, 2);
        assert!(dropped.order.iter().any(|&(l, rel, r)| {
            rel == OrderRel::Lt && l != r // derived t1 < t3 survives
        }));
        assert!(DnfQuery::conjunctive(dropped).is_tight());
    }

    #[test]
    fn fullness_closure_on_paper_example() {
        // The paper's example: exists u v w. Q3(u,v,w) & u <= v & v <= w is
        // not full; closure adds u <= w. We emulate with monadic atoms.
        let v = voc();
        let e = QueryExpr::Exists(
            vec!["u".into(), "v".into(), "w".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::atom1(p(&v, "P"), "u"),
                QueryExpr::atom1(p(&v, "Q"), "v"),
                QueryExpr::atom1(p(&v, "R"), "w"),
                QueryExpr::le("u", "v"),
                QueryExpr::le("v", "w"),
            ])),
        );
        let d = e.to_dnf(&v).unwrap();
        let full = d.disjuncts[0].to_full();
        assert_eq!(full.order.len(), 3);
    }

    #[test]
    fn sequentiality() {
        let v = voc();
        // x < y <= z : sequential.
        let e = QueryExpr::Exists(
            vec!["x".into(), "y".into(), "z".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::atom1(p(&v, "P"), "x"),
                QueryExpr::lt("x", "y"),
                QueryExpr::atom1(p(&v, "P"), "y"),
                QueryExpr::le("y", "z"),
                QueryExpr::atom1(p(&v, "Q"), "z"),
            ])),
        );
        let d = e.to_dnf(&v).unwrap();
        assert!(d.disjuncts[0].is_sequential());
        // x < y, x < z (fork): not sequential.
        let e = QueryExpr::Exists(
            vec!["x".into(), "y".into(), "z".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::atom1(p(&v, "P"), "x"),
                QueryExpr::atom1(p(&v, "P"), "y"),
                QueryExpr::atom1(p(&v, "P"), "z"),
                QueryExpr::lt("x", "y"),
                QueryExpr::lt("x", "z"),
            ])),
        );
        let d = e.to_dnf(&v).unwrap();
        assert!(!d.disjuncts[0].is_sequential());
        assert_eq!(d.disjuncts[0].width(), 2);
    }

    #[test]
    fn ne_elimination_expands() {
        let v = voc();
        let e = QueryExpr::Exists(
            vec!["x".into(), "y".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::atom1(p(&v, "P"), "x"),
                QueryExpr::atom1(p(&v, "P"), "y"),
                QueryExpr::ne("x", "y"),
            ])),
        );
        let d = e.to_dnf(&v).unwrap();
        let expanded = d.disjuncts[0].eliminate_ne(16).unwrap();
        assert_eq!(expanded.len(), 2);
        for cq in &expanded {
            assert!(cq.order.iter().all(|(_, r, _)| *r == OrderRel::Lt));
        }
        // cap respected
        assert!(d.disjuncts[0].eliminate_ne(1).is_err());
    }

    #[test]
    fn constant_elimination_guards_constants() {
        let mut v = voc();
        let pp = p(&v, "P");
        let u = v.ord("u0");
        let db = Database::new();
        let e = QueryExpr::Exists(
            vec!["t".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::Proper {
                    pred: pp,
                    args: vec![QTerm::Var("t".into())],
                },
                QueryExpr::Order {
                    lhs: QTerm::OrdConst(u),
                    rel: OrderRel::Lt,
                    rhs: QTerm::Var("t".into()),
                },
            ])),
        );
        let (db2, dnf) = eliminate_constants(&mut v, &db, &e).unwrap();
        assert_eq!(db2.proper_atoms().len(), 1); // the guard fact
        let cq = &dnf.disjuncts[0];
        assert_eq!(cq.n_ord_vars, 2);
        assert_eq!(cq.proper.len(), 2); // P(t) and the guard atom
        assert!(cq.is_tight());
    }

    #[test]
    fn display_renders() {
        let v = voc();
        let e = QueryExpr::Exists(
            vec!["s".into(), "t".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::atom1(p(&v, "P"), "s"),
                QueryExpr::lt("s", "t"),
            ])),
        );
        let d = e.to_dnf(&v).unwrap();
        let s = d.display(&v).to_string();
        assert!(s.contains("P(") && s.contains('<'));
        assert_eq!(DnfQuery::default().display(&v).to_string(), "false");
    }

    #[test]
    fn shadowing_quantifiers_are_distinct() {
        let v = voc();
        // exists t. P(t) & (exists t. Q(t)) — inner t distinct from outer.
        let e = QueryExpr::Exists(
            vec!["t".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::atom1(p(&v, "P"), "t"),
                QueryExpr::Exists(
                    vec!["t".into()],
                    Box::new(QueryExpr::atom1(p(&v, "Q"), "t")),
                ),
            ])),
        );
        let d = e.to_dnf(&v).unwrap();
        assert_eq!(d.disjuncts[0].n_ord_vars, 2);
    }
}
