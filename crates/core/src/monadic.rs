//! Monadic databases and queries as labelled dags (§4).
//!
//! When all predicates are monadic, a normalized database is exactly a
//! vertex-labelled dag: `D[u]` is the set of predicates `P` with `P(u) ∈ D`
//! (Fig. 5 of the paper shows the query version). This module provides
//! [`MonadicDatabase`] and [`MonadicQuery`] in that representation,
//! conversions from the general types, the object/order query split of §4,
//! and the `Paths(·)` enumeration used by Lemma 4.1.

use crate::atom::{OrderRel, Term};
use crate::bitset::PredSet;
use crate::database::NormalDatabase;
use crate::error::{CoreError, Result};
use crate::flexi::FlexiWord;
use crate::model::MonadicModel;
use crate::ordgraph::OrderGraph;
use crate::query::{ConjunctiveQuery, QArg};
use crate::sym::Vocabulary;
use std::sync::Arc;

/// A monadic database: an order dag with a predicate-set label per vertex,
/// plus optional `!=` constraints between vertices (§7).
///
/// The dag is `Arc`-shared with the [`NormalDatabase`] the view was built
/// from ([`MonadicDatabase::from_normal`] aliases, it does not clone), so
/// session snapshots and copy-on-write unsharing pay for the graph at
/// most once per *structural* change, never per publish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonadicDatabase {
    /// The order dag (shared with the normalized view; see the type docs).
    pub graph: Arc<OrderGraph>,
    /// `labels[v] = D[v]`, the predicates asserted of vertex `v`.
    pub labels: Vec<PredSet>,
    /// Inequality constraints (vertex pairs); empty in the `[<,<=]` case.
    pub ne: Vec<(usize, usize)>,
}

impl MonadicDatabase {
    /// Builds from a normalized database, requiring every proper atom to be
    /// monadic. Monadic-order atoms become vertex labels (those of constants
    /// merged by N1 are unioned); monadic-*object* atoms are definite facts
    /// that constrain no order point — they are skipped here and evaluated
    /// through the object-profile side of the §4 split
    /// ([`crate::session::Session::object_profiles`]).
    pub fn from_normal(voc: &Vocabulary, db: &NormalDatabase) -> Result<Self> {
        let mut labels = vec![PredSet::new(); db.graph.len()];
        for a in &db.proper {
            let sig = voc.signature(a.pred);
            if sig.is_monadic_object() {
                continue;
            }
            if !sig.is_monadic_order() {
                return Err(CoreError::NotMonadic {
                    pred: voc.pred_name(a.pred).to_string(),
                });
            }
            match a.args[0] {
                Term::Ord(u) => labels[db.vertex_of[&u]].insert(a.pred),
                Term::Obj(_) => unreachable!("signature is order-sorted"),
            };
        }
        Ok(MonadicDatabase {
            // An `Arc` alias, not a graph clone: the normal and monadic
            // views of one session share one dag by construction.
            graph: Arc::clone(&db.graph),
            labels,
            ne: db.ne.clone(),
        })
    }

    /// Builds directly from a dag and labels.
    pub fn new(graph: OrderGraph, labels: Vec<PredSet>) -> Self {
        assert_eq!(graph.len(), labels.len());
        MonadicDatabase {
            graph: Arc::new(graph),
            labels,
            ne: Vec::new(),
        }
    }

    /// Builds the width-one database of a flexi-word.
    pub fn from_flexiword(w: &FlexiWord) -> Self {
        let n = w.len();
        let edges: Vec<(usize, usize, OrderRel)> = (0..n.saturating_sub(1))
            .map(|i| (i, i + 1, w.rels()[i]))
            .collect();
        let graph = OrderGraph::from_dag_edges(n, &edges).expect("chain is acyclic");
        MonadicDatabase {
            graph: Arc::new(graph),
            labels: w.labels().to_vec(),
            ne: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True when the database has no vertices.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// The width of the database (§2).
    pub fn width(&self) -> usize {
        self.graph.width()
    }

    /// Size measure `|D|` = vertices + edges.
    pub fn size(&self) -> usize {
        self.graph.len() + self.graph.edge_count()
    }

    /// Converts back to a flexi-word when the database has width ≤ 1.
    ///
    /// Consecutive vertices in the chain are related by `<` when a strict
    /// path joins them and `<=` otherwise. Unrelated vertices would make
    /// the width exceed one.
    pub fn to_flexiword(&self) -> Result<FlexiWord> {
        if self.graph.len() > 1 && self.graph.width() > 1 {
            return Err(CoreError::NotSequential);
        }
        let order = chain_order(&self.graph)?;
        let strict = self.graph.strict_reachability();
        let mut w = FlexiWord::empty();
        for (i, &v) in order.iter().enumerate() {
            // The relation of the first letter is ignored by `push`.
            let rel = if i == 0 || strict[order[i - 1]].contains(v) {
                OrderRel::Lt
            } else {
                OrderRel::Le
            };
            w.push(rel, self.labels[v].clone());
        }
        Ok(w)
    }

    /// Enumerates `Paths(D)`: the flexi-words of the maximal width-one
    /// sub-dags, realized as source-to-sink edge paths.
    pub fn paths(&self) -> PathsIter<'_> {
        PathsIter::new(&self.graph, &self.labels)
    }

    /// Number of source-to-sink paths (computed by DP, no enumeration).
    pub fn path_count(&self) -> u128 {
        path_count(&self.graph)
    }

    /// The minimal models of a width-one `[<,<=]` database are obtained by
    /// merging `<=`-adjacent letters; the *unique* minimal model exists
    /// only for words. For general use see the `indord-entail` engines.
    pub fn as_unique_model(&self) -> Option<MonadicModel> {
        let w = self.to_flexiword().ok()?;
        w.is_word().then(|| MonadicModel::new(w.labels().to_vec()))
    }
}

/// A conjunctive monadic query as a labelled dag (Fig. 5), plus optional
/// `!=` atoms between variables (§7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonadicQuery {
    /// The order dag over the query's order variables.
    pub graph: OrderGraph,
    /// `labels[t] = Φ[t]`, the predicates required of variable `t`.
    pub labels: Vec<PredSet>,
    /// Inequality atoms (§7).
    pub ne: Vec<(usize, usize)>,
}

impl MonadicQuery {
    /// Builds from a normalized conjunctive query, requiring every proper
    /// atom to be monadic over the order sort (use
    /// [`split_object_part`] first when monadic-object atoms are present).
    pub fn from_conjunctive(voc: &Vocabulary, cq: &ConjunctiveQuery) -> Result<Self> {
        let mut labels = vec![PredSet::new(); cq.n_ord_vars];
        for a in &cq.proper {
            let sig = voc.signature(a.pred);
            if !sig.is_monadic_order() {
                return Err(CoreError::NotMonadic {
                    pred: voc.pred_name(a.pred).to_string(),
                });
            }
            match a.args[0] {
                QArg::Ord(t) => labels[t as usize].insert(a.pred),
                QArg::Obj(_) => unreachable!("signature is order-sorted"),
            };
        }
        let graph = cq.order_graph();
        let ne = cq
            .order
            .iter()
            .filter(|(_, r, _)| *r == OrderRel::Ne)
            .map(|&(l, _, r)| (l as usize, r as usize))
            .collect();
        Ok(MonadicQuery { graph, labels, ne })
    }

    /// Builds directly from a dag and labels.
    pub fn new(graph: OrderGraph, labels: Vec<PredSet>) -> Self {
        assert_eq!(graph.len(), labels.len());
        MonadicQuery {
            graph,
            labels,
            ne: Vec::new(),
        }
    }

    /// Builds the sequential query of a flexi-word.
    pub fn from_flexiword(w: &FlexiWord) -> Self {
        let db = MonadicDatabase::from_flexiword(w);
        MonadicQuery {
            graph: Arc::try_unwrap(db.graph).expect("freshly built dag is unshared"),
            labels: db.labels,
            ne: Vec::new(),
        }
    }

    /// Number of order variables.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// True when the query has no variables (trivially true query).
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Size measure `|Φ|` = variables + atoms.
    pub fn size(&self) -> usize {
        self.graph.len() + self.graph.edge_count() + self.ne.len()
    }

    /// Sequentiality: dag width ≤ 1 and no `!=` atoms.
    pub fn is_sequential(&self) -> bool {
        self.ne.is_empty() && (self.graph.len() <= 1 || self.graph.width() <= 1)
    }

    /// Width of the query dag.
    pub fn width(&self) -> usize {
        self.graph.width()
    }

    /// Converts a sequential query to its flexi-word.
    pub fn to_flexiword(&self) -> Result<FlexiWord> {
        if !self.is_sequential() {
            return Err(CoreError::NotSequential);
        }
        MonadicDatabase {
            graph: Arc::new(self.graph.clone()),
            labels: self.labels.clone(),
            ne: Vec::new(),
        }
        .to_flexiword()
    }

    /// Enumerates `Paths(Φ)` (Lemma 4.1): the maximal sequential subqueries
    /// as flexi-words, realized as source-to-sink edge paths of the dag.
    pub fn paths(&self) -> PathsIter<'_> {
        PathsIter::new(&self.graph, &self.labels)
    }

    /// Number of paths (DP).
    pub fn path_count(&self) -> u128 {
        path_count(&self.graph)
    }

    /// Naive model checking `M |= Φ` by backtracking assignment of query
    /// vertices to points (used as a test oracle; the efficient checker is
    /// `indord-entail`'s `modelcheck`, Cor. 5.1).
    pub fn holds_in_naive(&self, m: &MonadicModel) -> bool {
        let n = self.graph.len();
        let mut assign = vec![usize::MAX; n];
        self.backtrack(m, &mut assign, 0)
    }

    fn backtrack(&self, m: &MonadicModel, assign: &mut Vec<usize>, v: usize) -> bool {
        if v == self.graph.len() {
            return true;
        }
        'points: for p in 0..m.len() {
            if !self.labels[v].is_subset(&m.labels[p]) {
                continue;
            }
            assign[v] = p;
            // check all order atoms with both endpoints assigned
            for (a, b, rel) in self.graph.edges() {
                let (pa, pb) = (assign[a], assign[b]);
                if pa == usize::MAX || pb == usize::MAX {
                    continue;
                }
                let ok = match rel {
                    OrderRel::Lt => pa < pb,
                    OrderRel::Le => pa <= pb,
                    OrderRel::Ne => unreachable!(),
                };
                if !ok {
                    assign[v] = usize::MAX;
                    continue 'points;
                }
            }
            for &(a, b) in &self.ne {
                let (pa, pb) = (assign[a], assign[b]);
                if pa != usize::MAX && pb != usize::MAX && pa == pb {
                    assign[v] = usize::MAX;
                    continue 'points;
                }
            }
            if self.backtrack(m, assign, v + 1) {
                return true;
            }
            assign[v] = usize::MAX;
        }
        false
    }
}

/// Totally orders the vertices of a width-≤1 dag by reachability.
fn chain_order(g: &OrderGraph) -> Result<Vec<usize>> {
    let reach = g.reachability();
    let mut order: Vec<usize> = (0..g.len()).collect();
    // Sort by number of reachable vertices, descending — in a chain this is
    // a strict total order.
    order.sort_by_key(|&v| std::cmp::Reverse(reach[v].len()));
    for w in order.windows(2) {
        if !reach[w[0]].contains(w[1]) {
            return Err(CoreError::NotSequential);
        }
    }
    Ok(order)
}

/// DP count of source-to-sink paths of a dag.
fn path_count(g: &OrderGraph) -> u128 {
    let order = g.topo_order();
    let mut count = vec![0u128; g.len()];
    let mut total = 0u128;
    for &v in order.iter().rev() {
        if g.successors(v).is_empty() {
            count[v] = 1;
        } else {
            count[v] = g
                .successors(v)
                .iter()
                .map(|&(w, _)| count[w as usize])
                .sum();
        }
        if g.predecessors(v).is_empty() {
            total += count[v];
        }
    }
    total
}

/// Lazy iterator over the source-to-sink edge paths of a labelled dag,
/// yielding each as a [`FlexiWord`].
pub struct PathsIter<'a> {
    graph: &'a OrderGraph,
    labels: &'a [PredSet],
    /// The vertices of the current path.
    stack: Vec<usize>,
    /// `branch[j]` is the successor-edge index taken from `stack[j]`
    /// (`stack.len()-1` entries).
    branch: Vec<usize>,
    /// `rels[j]` is the label of that edge (`stack.len()-1` entries).
    rels: Vec<OrderRel>,
    sources: Vec<usize>,
    next_source: usize,
    done: bool,
}

impl<'a> PathsIter<'a> {
    fn new(graph: &'a OrderGraph, labels: &'a [PredSet]) -> Self {
        let sources: Vec<usize> = (0..graph.len())
            .filter(|&v| graph.predecessors(v).is_empty())
            .collect();
        PathsIter {
            graph,
            labels,
            stack: Vec::new(),
            branch: Vec::new(),
            rels: Vec::new(),
            sources,
            next_source: 0,
            done: graph.is_empty(),
        }
    }

    fn current_word(&self) -> FlexiWord {
        let labels = self.stack.iter().map(|&v| self.labels[v].clone()).collect();
        FlexiWord::new(labels, self.rels.clone())
    }

    /// Extends the path from the top vertex to a sink, always taking the
    /// first successor edge.
    fn descend(&mut self) {
        loop {
            let v = *self.stack.last().expect("descend on nonempty stack");
            let succ = self.graph.successors(v);
            if succ.is_empty() {
                return;
            }
            let (w, rel) = succ[0];
            self.branch.push(0);
            self.rels.push(rel);
            self.stack.push(w as usize);
        }
    }

    /// Advances to the next path after having yielded the current one.
    fn advance(&mut self) {
        loop {
            self.stack.pop();
            if self.stack.is_empty() {
                self.next_source += 1;
                if self.next_source >= self.sources.len() {
                    self.done = true;
                }
                return;
            }
            let v = *self.stack.last().expect("nonempty");
            let i = self.branch.pop().expect("branch per inner vertex");
            self.rels.pop();
            let succ = self.graph.successors(v);
            if i + 1 < succ.len() {
                let (w, rel) = succ[i + 1];
                self.branch.push(i + 1);
                self.rels.push(rel);
                self.stack.push(w as usize);
                self.descend();
                return;
            }
        }
    }
}

impl Iterator for PathsIter<'_> {
    type Item = FlexiWord;

    fn next(&mut self) -> Option<FlexiWord> {
        if self.done {
            return None;
        }
        if self.stack.is_empty() {
            if self.next_source >= self.sources.len() {
                self.done = true;
                return None;
            }
            self.stack.push(self.sources[self.next_source]);
            self.descend();
        }
        let w = self.current_word();
        self.advance();
        Some(w)
    }
}

/// The object part of a monadic query disjunct (§4): for each object
/// variable, the monadic-object predicates required of it. Evaluated
/// directly against the definite facts, independent of the order part.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectPart {
    /// Required predicate set per object variable.
    pub requirements: Vec<PredSet>,
}

impl ObjectPart {
    /// Evaluates against the definite facts of a database: each variable
    /// needs some object constant carrying all its required predicates.
    /// Takes the facts as `(pred, object)` pairs.
    pub fn holds(&self, facts: &[(crate::sym::PredSym, crate::sym::ObjSym)]) -> bool {
        use std::collections::HashMap;
        let mut by_obj: HashMap<crate::sym::ObjSym, PredSet> = HashMap::new();
        for &(p, o) in facts {
            by_obj.entry(o).or_default().insert(p);
        }
        let profiles: Vec<PredSet> = by_obj.into_values().collect();
        self.holds_against(&profiles)
    }

    /// Evaluates against precomputed per-object predicate profiles (one
    /// `PredSet` per object constant), as cached by
    /// [`crate::session::Session::object_profiles`].
    pub fn holds_against(&self, profiles: &[PredSet]) -> bool {
        self.requirements
            .iter()
            .all(|req| profiles.iter().any(|have| req.is_subset(have)))
    }

    /// True when the object part imposes no requirements.
    pub fn is_empty(&self) -> bool {
        self.requirements.is_empty()
    }
}

/// Splits a conjunctive query with monadic predicates of both sorts into
/// its object part and order part: `Φ = ∃x Φ₁(x) ∧ ∃t Φ₂(t)` (§4). Errors
/// on predicates that are neither monadic-object nor monadic-order.
pub fn split_object_part(
    voc: &Vocabulary,
    cq: &ConjunctiveQuery,
) -> Result<(ObjectPart, MonadicQuery)> {
    let mut requirements = vec![PredSet::new(); cq.n_obj_vars];
    let mut order_atoms = Vec::new();
    for a in &cq.proper {
        let sig = voc.signature(a.pred);
        if sig.is_monadic_object() {
            match a.args[0] {
                QArg::Obj(x) => {
                    requirements[x as usize].insert(a.pred);
                }
                QArg::Ord(_) => unreachable!(),
            }
        } else if sig.is_monadic_order() {
            order_atoms.push(a.clone());
        } else {
            return Err(CoreError::NotMonadic {
                pred: voc.pred_name(a.pred).to_string(),
            });
        }
    }
    let order_cq = ConjunctiveQuery {
        n_obj_vars: 0,
        n_ord_vars: cq.n_ord_vars,
        proper: order_atoms,
        order: cq.order.clone(),
    };
    let mq = MonadicQuery::from_conjunctive(voc, &order_cq)?;
    // Drop variables with no requirements? No: an object variable with no
    // atoms cannot arise (variables are introduced by atom occurrences).
    Ok((ObjectPart { requirements }, mq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::OrderRel::{Le, Lt};
    use crate::sym::{PredSym, Sort};

    fn ps(ids: &[usize]) -> PredSet {
        ids.iter().map(|&i| PredSym::from_index(i)).collect()
    }

    fn dag(n: usize, edges: &[(usize, usize, OrderRel)]) -> OrderGraph {
        OrderGraph::from_dag_edges(n, edges).unwrap()
    }

    /// The query of Fig. 5: t1<t2<t3, t2<=t4 with labels
    /// Φ[t1]={P,Q}, Φ[t2]={P}, Φ[t3]={R}, Φ[t4]={S}.
    fn fig5() -> MonadicQuery {
        let g = dag(4, &[(0, 1, Lt), (1, 2, Lt), (1, 3, Le)]);
        MonadicQuery::new(g, vec![ps(&[0, 1]), ps(&[0]), ps(&[2]), ps(&[3])])
    }

    #[test]
    fn fig5_paths_match_paper() {
        let q = fig5();
        let mut paths: Vec<FlexiWord> = q.paths().collect();
        assert_eq!(paths.len(), 2);
        assert_eq!(q.path_count(), 2);
        // [P,Q] < [P] < [R]  and  [P,Q] < [P] <= [S]
        let want1 = FlexiWord::new(vec![ps(&[0, 1]), ps(&[0]), ps(&[2])], vec![Lt, Lt]);
        let want2 = FlexiWord::new(vec![ps(&[0, 1]), ps(&[0]), ps(&[3])], vec![Lt, Le]);
        paths.sort_by_key(|w| format!("{w:?}"));
        let mut want = vec![want1, want2];
        want.sort_by_key(|w| format!("{w:?}"));
        assert_eq!(paths, want);
    }

    #[test]
    fn isolated_vertices_are_singleton_paths() {
        let g = dag(3, &[]);
        let q = MonadicQuery::new(g, vec![ps(&[0]), ps(&[1]), ps(&[2])]);
        let paths: Vec<_> = q.paths().collect();
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn empty_graph_has_no_paths() {
        let g = dag(0, &[]);
        let q = MonadicQuery::new(g, vec![]);
        assert_eq!(q.paths().count(), 0);
        assert_eq!(q.path_count(), 0);
    }

    #[test]
    fn diamond_has_two_paths() {
        let g = dag(4, &[(0, 1, Lt), (0, 2, Le), (1, 3, Lt), (2, 3, Lt)]);
        let q = MonadicQuery::new(g, vec![ps(&[0]); 4]);
        assert_eq!(q.paths().count(), 2);
        assert_eq!(q.path_count(), 2);
    }

    #[test]
    fn flexiword_database_round_trip() {
        let w = FlexiWord::new(vec![ps(&[0]), ps(&[1]), ps(&[2])], vec![Lt, Le]);
        let db = MonadicDatabase::from_flexiword(&w);
        assert_eq!(db.len(), 3);
        assert_eq!(db.width(), 1);
        assert_eq!(db.to_flexiword().unwrap(), w);
    }

    #[test]
    fn nonsequential_flexiword_conversion_fails() {
        let g = dag(3, &[(0, 1, Lt)]);
        let db = MonadicDatabase::new(g, vec![ps(&[0]); 3]);
        assert!(db.to_flexiword().is_err());
        let q = fig5();
        assert!(!q.is_sequential());
        assert!(q.to_flexiword().is_err());
    }

    #[test]
    fn sequential_detection() {
        let w = FlexiWord::word(vec![ps(&[0]), ps(&[1])]);
        let q = MonadicQuery::from_flexiword(&w);
        assert!(q.is_sequential());
        assert_eq!(q.width(), 1);
        assert_eq!(q.to_flexiword().unwrap(), w);
    }

    #[test]
    fn unique_model_of_word_database() {
        let w = FlexiWord::word(vec![ps(&[0]), ps(&[1])]);
        let db = w.to_database();
        let m = db.as_unique_model().unwrap();
        assert_eq!(m.labels, vec![ps(&[0]), ps(&[1])]);
        // <=-databases have several minimal models → none unique here.
        let w2 = FlexiWord::new(vec![ps(&[0]), ps(&[1])], vec![Le]);
        assert!(w2.to_database().as_unique_model().is_none());
    }

    #[test]
    fn naive_model_check() {
        let q = fig5();
        // model {P,Q} {P} {R,S}: t1→0, t2→1, t3→2, t4→2 works (t2<=t4).
        let m = MonadicModel::new(vec![ps(&[0, 1]), ps(&[0]), ps(&[2, 3])]);
        assert!(q.holds_in_naive(&m));
        // model {P,Q} {P} {R}: t4 needs S — fails.
        let m = MonadicModel::new(vec![ps(&[0, 1]), ps(&[0]), ps(&[2])]);
        assert!(!q.holds_in_naive(&m));
    }

    #[test]
    fn ne_atoms_in_naive_check() {
        let g = dag(2, &[]);
        let mut q = MonadicQuery::new(g, vec![ps(&[0]), ps(&[0])]);
        q.ne.push((0, 1));
        // model with a single {P} point: both vars would collide.
        let m = MonadicModel::new(vec![ps(&[0])]);
        assert!(!q.holds_in_naive(&m));
        let m = MonadicModel::new(vec![ps(&[0]), ps(&[0])]);
        assert!(q.holds_in_naive(&m));
    }

    #[test]
    fn object_part_split_and_eval() {
        use crate::query::QueryExpr;
        let mut voc = Vocabulary::new();
        let husband = voc.pred("Employee", &[Sort::Object]).unwrap();
        let p = voc.monadic_pred("P");
        let e = QueryExpr::Exists(
            vec!["x".into(), "t".into()],
            Box::new(QueryExpr::And(vec![
                QueryExpr::Proper {
                    pred: husband,
                    args: vec![crate::query::QTerm::Var("x".into())],
                },
                QueryExpr::atom1(p, "t"),
            ])),
        );
        let d = e.to_dnf(&voc).unwrap();
        let (obj, mq) = split_object_part(&voc, &d.disjuncts[0]).unwrap();
        assert_eq!(obj.requirements.len(), 1);
        assert_eq!(mq.len(), 1);
        let alice = voc.obj("alice");
        assert!(obj.holds(&[(husband, alice)]));
        assert!(!obj.holds(&[]));
    }
}
