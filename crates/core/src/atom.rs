//! Ground atoms: proper atoms and order atoms.
//!
//! A database consists of ground atoms of two kinds (§2 of the paper):
//!
//! 1. **proper atoms** `P(a₁, …, aₙ)` where each `aᵢ` is an object or order
//!    constant matching the predicate's signature;
//! 2. **order atoms** `u < v` and `u <= v` between order constants.
//!
//! Section 7 of the paper additionally considers inequality atoms `u != v`;
//! [`OrderRel::Ne`] supports that generalization.

use crate::error::{CoreError, Result};
use crate::sym::{ObjSym, OrdSym, PredSym, Sort, Vocabulary};
use std::fmt;

/// A ground term: either an object constant or an order constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// Object constant.
    Obj(ObjSym),
    /// Order constant.
    Ord(OrdSym),
}

impl Term {
    /// The sort of this term.
    pub fn sort(self) -> Sort {
        match self {
            Term::Obj(_) => Sort::Object,
            Term::Ord(_) => Sort::Order,
        }
    }

    /// Unwraps an order constant, if this is one.
    pub fn as_ord(self) -> Option<OrdSym> {
        match self {
            Term::Ord(u) => Some(u),
            Term::Obj(_) => None,
        }
    }

    /// Unwraps an object constant, if this is one.
    pub fn as_obj(self) -> Option<ObjSym> {
        match self {
            Term::Obj(o) => Some(o),
            Term::Ord(_) => None,
        }
    }
}

/// A ground proper atom `P(t₁, …, tₙ)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProperAtom {
    /// The predicate.
    pub pred: PredSym,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl ProperAtom {
    /// Builds a proper atom, validating arity and sorts against the
    /// vocabulary.
    pub fn new(voc: &Vocabulary, pred: PredSym, args: Vec<Term>) -> Result<Self> {
        let sig = voc.signature(pred);
        if sig.arity() != args.len() {
            return Err(CoreError::ArityMismatch {
                pred: voc.pred_name(pred).to_string(),
                expected: sig.arity(),
                found: args.len(),
            });
        }
        for (i, (t, &s)) in args.iter().zip(sig.arg_sorts.iter()).enumerate() {
            if t.sort() != s {
                return Err(CoreError::SortMismatch {
                    pred: voc.pred_name(pred).to_string(),
                    position: i,
                    expected: s,
                });
            }
        }
        Ok(ProperAtom { pred, args })
    }

    /// The order constants appearing among the arguments, in order.
    pub fn order_args(&self) -> impl Iterator<Item = OrdSym> + '_ {
        self.args.iter().filter_map(|t| t.as_ord())
    }

    /// Renders the atom using vocabulary names.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        DisplayProper { atom: self, voc }
    }
}

struct DisplayProper<'a> {
    atom: &'a ProperAtom,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayProper<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.voc.pred_name(self.atom.pred))?;
        for (i, t) in self.atom.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match t {
                Term::Obj(o) => write!(f, "{}", self.voc.obj_name(*o))?,
                Term::Ord(u) => write!(f, "{}", self.voc.ord_name(*u))?,
            }
        }
        write!(f, ")")
    }
}

/// The order relations available in order atoms.
///
/// `Lt` and `Le` are the relations of the main body of the paper; `Ne` is
/// the inequality of §7. Restricted fragments are written `[<]`, `[<=]`,
/// `[!=]` etc., following the paper's bracket notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OrderRel {
    /// Strict order `u < v`.
    Lt,
    /// Non-strict order `u <= v`.
    Le,
    /// Inequality `u != v` (§7).
    Ne,
}

impl OrderRel {
    /// Concrete syntax of the relation.
    pub fn symbol(self) -> &'static str {
        match self {
            OrderRel::Lt => "<",
            OrderRel::Le => "<=",
            OrderRel::Ne => "!=",
        }
    }
}

impl fmt::Display for OrderRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A ground order atom `u R v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OrderAtom {
    /// Left order constant.
    pub lhs: OrdSym,
    /// The relation.
    pub rel: OrderRel,
    /// Right order constant.
    pub rhs: OrdSym,
}

impl OrderAtom {
    /// `u < v`.
    pub fn lt(lhs: OrdSym, rhs: OrdSym) -> Self {
        OrderAtom {
            lhs,
            rel: OrderRel::Lt,
            rhs,
        }
    }

    /// `u <= v`.
    pub fn le(lhs: OrdSym, rhs: OrdSym) -> Self {
        OrderAtom {
            lhs,
            rel: OrderRel::Le,
            rhs,
        }
    }

    /// `u != v`.
    pub fn ne(lhs: OrdSym, rhs: OrdSym) -> Self {
        OrderAtom {
            lhs,
            rel: OrderRel::Ne,
            rhs,
        }
    }

    /// Renders the atom using vocabulary names.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        DisplayOrder { atom: self, voc }
    }
}

struct DisplayOrder<'a> {
    atom: &'a OrderAtom,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayOrder<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}",
            self.voc.ord_name(self.atom.lhs),
            self.atom.rel,
            self.voc.ord_name(self.atom.rhs)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voc() -> Vocabulary {
        let mut v = Vocabulary::new();
        v.pred("P", &[Sort::Object, Sort::Order]).unwrap();
        v
    }

    #[test]
    fn well_sorted_atom_builds() {
        let mut v = voc();
        let p = v.find_pred("P").unwrap();
        let a = v.obj("a");
        let u = v.ord("u");
        let atom = ProperAtom::new(&v, p, vec![Term::Obj(a), Term::Ord(u)]).unwrap();
        assert_eq!(atom.order_args().collect::<Vec<_>>(), vec![u]);
        assert_eq!(atom.display(&v).to_string(), "P(a, u)");
    }

    #[test]
    fn arity_is_checked() {
        let mut v = voc();
        let p = v.find_pred("P").unwrap();
        let a = v.obj("a");
        let e = ProperAtom::new(&v, p, vec![Term::Obj(a)]).unwrap_err();
        assert!(matches!(
            e,
            CoreError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            }
        ));
    }

    #[test]
    fn sorts_are_checked() {
        let mut v = voc();
        let p = v.find_pred("P").unwrap();
        let u = v.ord("u");
        let e = ProperAtom::new(&v, p, vec![Term::Ord(u), Term::Ord(u)]).unwrap_err();
        assert!(matches!(e, CoreError::SortMismatch { position: 0, .. }));
    }

    #[test]
    fn order_atom_display() {
        let mut v = voc();
        let u = v.ord("u");
        let w = v.ord("w");
        assert_eq!(OrderAtom::lt(u, w).display(&v).to_string(), "u < w");
        assert_eq!(OrderAtom::le(u, w).display(&v).to_string(), "u <= w");
        assert_eq!(OrderAtom::ne(u, w).display(&v).to_string(), "u != w");
    }

    #[test]
    fn term_accessors() {
        let mut v = voc();
        let a = v.obj("a");
        let u = v.ord("u");
        assert_eq!(Term::Obj(a).as_obj(), Some(a));
        assert_eq!(Term::Obj(a).as_ord(), None);
        assert_eq!(Term::Ord(u).as_ord(), Some(u));
        assert_eq!(Term::Ord(u).sort(), Sort::Order);
    }
}
