//! Thread-local engine counters for per-request observability.
//!
//! The serving layer wants to answer "what did *this* request cost?" —
//! states expanded in the Theorem 5.3 search, pair-table hits and
//! misses, scaffold work — without threading a context object through
//! every engine signature or paying for synchronization on the hot
//! path. Each request is served start-to-finish on one worker thread,
//! so plain thread-local [`Cell`]s give exact per-request deltas: the
//! dispatcher snapshots the counters before evaluation and subtracts
//! after.
//!
//! The increments sit inside the state-interning and pair-acquisition
//! loops, the innermost hot paths of the disjunctive engine. A
//! thread-local `Cell::set(get + 1)` is a couple of instructions with
//! no atomics and no branches on shared state, which is what keeps the
//! serving-path tracing overhead within its ≤5% budget (measured by
//! the `prepared/serving-trace` bench leg).
//!
//! The counters are monotone within a thread; only deltas between two
//! [`snapshot`] calls are meaningful.

use std::cell::Cell;

thread_local! {
    static STATES_EXPANDED: Cell<u64> = const { Cell::new(0) };
    static PAIR_HITS: Cell<u64> = const { Cell::new(0) };
    static PAIR_MISSES: Cell<u64> = const { Cell::new(0) };
}

/// A point-in-time reading of this thread's engine counters.
///
/// Subtract two snapshots (via [`EngineCounters::delta_since`]) to get
/// the work attributable to the code that ran between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineCounters {
    /// States interned by the Theorem 5.3 search (fresh states only;
    /// deduplicated revisits don't count).
    pub states_expanded: u64,
    /// Pair-table acquisitions answered from the memo table.
    pub pair_hits: u64,
    /// Pair-table acquisitions that had to run the sub-scaffold
    /// fixpoint computation (including recomputes after eviction).
    pub pair_misses: u64,
}

impl EngineCounters {
    /// The counter movement since `earlier` (saturating, so a snapshot
    /// pair taken out of order reads zero rather than wrapping).
    #[must_use]
    pub fn delta_since(&self, earlier: &EngineCounters) -> EngineCounters {
        EngineCounters {
            states_expanded: self.states_expanded.saturating_sub(earlier.states_expanded),
            pair_hits: self.pair_hits.saturating_sub(earlier.pair_hits),
            pair_misses: self.pair_misses.saturating_sub(earlier.pair_misses),
        }
    }
}

/// Reads this thread's counters.
#[must_use]
pub fn snapshot() -> EngineCounters {
    EngineCounters {
        states_expanded: STATES_EXPANDED.with(Cell::get),
        pair_hits: PAIR_HITS.with(Cell::get),
        pair_misses: PAIR_MISSES.with(Cell::get),
    }
}

/// Records one state interned by the disjunctive search.
#[inline]
pub fn count_state_expanded() {
    STATES_EXPANDED.with(|c| c.set(c.get() + 1));
}

/// Records a pair-table acquisition served from the memo table.
#[inline]
pub fn count_pair_hit() {
    PAIR_HITS.with(|c| c.set(c.get() + 1));
}

/// Records a pair-table acquisition that ran the fixpoint computation.
#[inline]
pub fn count_pair_miss() {
    PAIR_MISSES.with(|c| c.set(c.get() + 1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_per_thread_and_monotone() {
        let before = snapshot();
        count_state_expanded();
        count_pair_hit();
        count_pair_hit();
        count_pair_miss();
        let delta = snapshot().delta_since(&before);
        assert_eq!(delta.states_expanded, 1);
        assert_eq!(delta.pair_hits, 2);
        assert_eq!(delta.pair_misses, 1);

        // A fresh thread starts from its own zero.
        let other = std::thread::spawn(|| {
            let before = snapshot();
            count_pair_miss();
            snapshot().delta_since(&before)
        })
        .join()
        .unwrap();
        assert_eq!(other.pair_misses, 1);
        assert_eq!(other.states_expanded, 0);
    }

    #[test]
    fn out_of_order_snapshots_saturate_to_zero() {
        let before = snapshot();
        count_state_expanded();
        let after = snapshot();
        assert_eq!(before.delta_since(&after), EngineCounters::default());
    }
}
