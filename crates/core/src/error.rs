//! Error types shared across the core crate.

use std::fmt;

/// Result alias used throughout `indord-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised while building or transforming databases and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A predicate was used with the wrong number of arguments.
    ArityMismatch {
        /// Predicate name.
        pred: String,
        /// Declared arity.
        expected: usize,
        /// Arity at the offending use site.
        found: usize,
    },
    /// A predicate was used with an argument of the wrong sort.
    SortMismatch {
        /// Predicate name.
        pred: String,
        /// Argument position (0-based).
        position: usize,
        /// Sort declared in the signature.
        expected: crate::sym::Sort,
    },
    /// The same name was declared with two different signatures.
    SignatureConflict {
        /// Predicate name.
        pred: String,
    },
    /// The order atoms are unsatisfiable (a `<`-cycle exists; §2, rules N1/N2).
    InconsistentOrder {
        /// Human-readable witness of the cycle.
        witness: String,
    },
    /// A query used a variable that was never quantified.
    UnboundVariable {
        /// The variable name.
        name: String,
    },
    /// The operation requires monadic predicates but an n-ary one was found.
    NotMonadic {
        /// Offending predicate name.
        pred: String,
    },
    /// The operation requires a sequential query (width-one order graph).
    NotSequential,
    /// Parse error with position information.
    Parse {
        /// Byte offset in the input.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// An enumeration cap was exceeded (guards exponential fallbacks).
    CapExceeded {
        /// Which cap.
        what: String,
        /// The configured limit.
        limit: usize,
    },
    /// A session's cached views were built against a different vocabulary
    /// than the one now supplied (sessions are single-vocabulary).
    VocabularyMismatch,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch {
                pred,
                expected,
                found,
            } => write!(
                f,
                "predicate `{pred}` declared with arity {expected} but used with {found} arguments"
            ),
            CoreError::SortMismatch {
                pred,
                position,
                expected,
            } => write!(
                f,
                "predicate `{pred}` argument {position} must have sort {expected:?}"
            ),
            CoreError::SignatureConflict { pred } => {
                write!(f, "predicate `{pred}` declared with conflicting signatures")
            }
            CoreError::InconsistentOrder { witness } => {
                write!(f, "order constraints are inconsistent: {witness}")
            }
            CoreError::UnboundVariable { name } => {
                write!(f, "variable `{name}` is not bound by any quantifier")
            }
            CoreError::NotMonadic { pred } => {
                write!(
                    f,
                    "operation requires monadic predicates; `{pred}` is not monadic"
                )
            }
            CoreError::NotSequential => {
                write!(f, "operation requires a sequential (width-one) query")
            }
            CoreError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            CoreError::CapExceeded { what, limit } => {
                write!(f, "enumeration cap exceeded for {what} (limit {limit})")
            }
            CoreError::VocabularyMismatch => {
                write!(
                    f,
                    "session views were cached against a different vocabulary"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::ArityMismatch {
            pred: "P".into(),
            expected: 2,
            found: 3,
        };
        let s = e.to_string();
        assert!(s.contains("P") && s.contains('2') && s.contains('3'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CoreError::NotSequential, CoreError::NotSequential);
        assert_ne!(
            CoreError::NotSequential,
            CoreError::UnboundVariable { name: "x".into() }
        );
    }
}
