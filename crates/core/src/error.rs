//! Error types shared across the core crate.

use std::fmt;

/// Result alias used throughout `indord-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

/// A half-open byte range `start..end` into the source text of a parse,
/// pointing at the offending token. [`Span::NONE`] (`0..0`) marks errors
/// raised away from any source text (e.g. programmatic query builders).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first offending byte.
    pub start: usize,
    /// Byte offset one past the last offending byte.
    pub end: usize,
}

impl Span {
    /// The no-position span used by errors without source text.
    pub const NONE: Span = Span { start: 0, end: 0 };

    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// A one-byte span at `at` (a lone offending character).
    pub fn point(at: usize) -> Span {
        Span {
            start: at,
            end: at + 1,
        }
    }

    /// Byte length of the span.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True for zero-length spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for [`Span::NONE`] — no position information.
    pub fn is_none(&self) -> bool {
        *self == Span::NONE
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Errors raised while building or transforming databases and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A predicate was used with the wrong number of arguments.
    ArityMismatch {
        /// Predicate name.
        pred: String,
        /// Declared arity.
        expected: usize,
        /// Arity at the offending use site.
        found: usize,
    },
    /// A predicate was used with an argument of the wrong sort.
    SortMismatch {
        /// Predicate name.
        pred: String,
        /// Argument position (0-based).
        position: usize,
        /// Sort declared in the signature.
        expected: crate::sym::Sort,
    },
    /// The same name was declared with two different signatures.
    SignatureConflict {
        /// Predicate name.
        pred: String,
    },
    /// The order atoms are unsatisfiable (a `<`-cycle exists; §2, rules N1/N2).
    InconsistentOrder {
        /// Human-readable witness of the cycle.
        witness: String,
    },
    /// A query used a variable that was never quantified.
    UnboundVariable {
        /// The variable name.
        name: String,
    },
    /// The operation requires monadic predicates but an n-ary one was found.
    NotMonadic {
        /// Offending predicate name.
        pred: String,
    },
    /// The operation requires a sequential query (width-one order graph).
    NotSequential,
    /// Parse error with position information.
    Parse {
        /// Byte span of the offending token in the input
        /// ([`Span::NONE`] when the error has no source position).
        span: Span,
        /// What went wrong.
        message: String,
    },
    /// An enumeration cap was exceeded (guards exponential fallbacks).
    CapExceeded {
        /// Which cap.
        what: String,
        /// The configured limit.
        limit: usize,
    },
    /// A session's cached views were built against a different vocabulary
    /// than the one now supplied (sessions are single-vocabulary).
    VocabularyMismatch,
    /// A cooperative deadline expired mid-search (the Theorem 5.3 loop
    /// polls it); the partial search is abandoned, no verdict exists.
    DeadlineExceeded,
}

impl CoreError {
    /// The source span of the error, when it carries one (today only
    /// [`CoreError::Parse`] does — and only when raised from actual
    /// source text).
    pub fn span(&self) -> Option<Span> {
        match self {
            CoreError::Parse { span, .. } if !span.is_none() => Some(*span),
            _ => None,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch {
                pred,
                expected,
                found,
            } => write!(
                f,
                "predicate `{pred}` declared with arity {expected} but used with {found} arguments"
            ),
            CoreError::SortMismatch {
                pred,
                position,
                expected,
            } => write!(
                f,
                "predicate `{pred}` argument {position} must have sort {expected:?}"
            ),
            CoreError::SignatureConflict { pred } => {
                write!(f, "predicate `{pred}` declared with conflicting signatures")
            }
            CoreError::InconsistentOrder { witness } => {
                write!(f, "order constraints are inconsistent: {witness}")
            }
            CoreError::UnboundVariable { name } => {
                write!(f, "variable `{name}` is not bound by any quantifier")
            }
            CoreError::NotMonadic { pred } => {
                write!(
                    f,
                    "operation requires monadic predicates; `{pred}` is not monadic"
                )
            }
            CoreError::NotSequential => {
                write!(f, "operation requires a sequential (width-one) query")
            }
            CoreError::Parse { span, message } => {
                if span.is_none() {
                    write!(f, "parse error: {message}")
                } else {
                    write!(f, "parse error at bytes {span}: {message}")
                }
            }
            CoreError::CapExceeded { what, limit } => {
                write!(f, "enumeration cap exceeded for {what} (limit {limit})")
            }
            CoreError::VocabularyMismatch => {
                write!(
                    f,
                    "session views were cached against a different vocabulary"
                )
            }
            CoreError::DeadlineExceeded => {
                write!(f, "request deadline exceeded before the search finished")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::ArityMismatch {
            pred: "P".into(),
            expected: 2,
            found: 3,
        };
        let s = e.to_string();
        assert!(s.contains("P") && s.contains('2') && s.contains('3'));
    }

    #[test]
    fn spans_render_and_accessor_filters_none() {
        let spanned = CoreError::Parse {
            span: Span::new(3, 7),
            message: "expected `;`".into(),
        };
        assert_eq!(spanned.span(), Some(Span::new(3, 7)));
        assert!(spanned.to_string().contains("3..7"));
        let unspanned = CoreError::Parse {
            span: Span::NONE,
            message: "no source".into(),
        };
        assert_eq!(unspanned.span(), None);
        assert!(!unspanned.to_string().contains("0..0"));
        assert_eq!(unspanned.span(), None);
        assert_eq!(Span::point(5), Span::new(5, 6));
        assert_eq!(Span::new(2, 9).len(), 7);
        assert_eq!(CoreError::NotSequential.span(), None);
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CoreError::NotSequential, CoreError::NotSequential);
        assert_ne!(
            CoreError::NotSequential,
            CoreError::UnboundVariable { name: "x".into() }
        );
    }
}
