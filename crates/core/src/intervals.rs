//! Interval data over indefinite orders (§1 of the paper).
//!
//! The paper's motivating examples (the embassy investigation, seriation,
//! Allen's interval algebra) concern *intervals*: binary predicates whose
//! two order arguments are the endpoints of a continuous period, as in
//! `IC(u, v, x)` — "x was in the compound from `u` to `v`".
//!
//! This module provides the interval layer as sugar over the point-based
//! core: [`IntervalStore`] asserts interval facts (endpoint pairs with
//! `start <= end`), and [`AllenRelation`] compiles each of Allen's
//! thirteen interval relations to the corresponding conjunction of
//! endpoint order atoms, following the point-based translation that
//! Vilain–Kautz–van Beek (cited in §1) use to obtain tractable point
//! fragments. Whether a relation *possibly* or *necessarily* holds between
//! two stored intervals then becomes ordinary certain-answer entailment.
//!
//! The translation uses the closed-interval convention `start <= end` with
//! `before` meaning `end₁ < start₂` (abutting intervals `end₁ = start₂`
//! are `meets`).

use crate::atom::{OrderRel, ProperAtom, Term};
use crate::database::Database;
use crate::error::Result;
use crate::query::{QTerm, QueryExpr};
use crate::sym::{ObjSym, OrdSym, PredSym, Sort, Vocabulary};

/// Allen's thirteen primitive interval relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllenRelation {
    /// `i` ends strictly before `j` starts.
    Before,
    /// `i` ends exactly when `j` starts.
    Meets,
    /// proper overlap: starts before, ends inside.
    Overlaps,
    /// same start, `i` ends first.
    Starts,
    /// strictly inside.
    During,
    /// same end, `i` starts later.
    Finishes,
    /// identical endpoints.
    Equals,
    /// inverse of [`AllenRelation::Before`].
    After,
    /// inverse of [`AllenRelation::Meets`].
    MetBy,
    /// inverse of [`AllenRelation::Overlaps`].
    OverlappedBy,
    /// inverse of [`AllenRelation::Starts`].
    StartedBy,
    /// inverse of [`AllenRelation::During`].
    Contains,
    /// inverse of [`AllenRelation::Finishes`].
    FinishedBy,
}

impl AllenRelation {
    /// All thirteen relations.
    pub const ALL: [AllenRelation; 13] = [
        AllenRelation::Before,
        AllenRelation::Meets,
        AllenRelation::Overlaps,
        AllenRelation::Starts,
        AllenRelation::During,
        AllenRelation::Finishes,
        AllenRelation::Equals,
        AllenRelation::After,
        AllenRelation::MetBy,
        AllenRelation::OverlappedBy,
        AllenRelation::StartedBy,
        AllenRelation::Contains,
        AllenRelation::FinishedBy,
    ];

    /// The inverse relation (`i R j ⟺ j R⁻¹ i`).
    pub fn inverse(self) -> AllenRelation {
        use AllenRelation::*;
        match self {
            Before => After,
            After => Before,
            Meets => MetBy,
            MetBy => Meets,
            Overlaps => OverlappedBy,
            OverlappedBy => Overlaps,
            Starts => StartedBy,
            StartedBy => Starts,
            During => Contains,
            Contains => During,
            Finishes => FinishedBy,
            FinishedBy => Finishes,
            Equals => Equals,
        }
    }

    /// The endpoint constraints of `(s1,e1) R (s2,e2)` as a list of
    /// `(endpoint, rel, endpoint)` triples over indices
    /// `0 = s1, 1 = e1, 2 = s2, 3 = e2`. `(a, Lt, b)` means "a before b";
    /// equality is encoded as the pair of `Le` atoms both ways.
    pub fn endpoint_constraints(self) -> Vec<(usize, OrderRel, usize)> {
        use AllenRelation::*;
        use OrderRel::{Le, Lt};
        // equality s = t as s <= t, t <= s (queries are constant-free and
        // equality-free; N1 merges the variables).
        let eq = |a: usize, b: usize| vec![(a, Le, b), (b, Le, a)];
        match self {
            Before => vec![(1, Lt, 2)],
            Meets => eq(1, 2),
            Overlaps => vec![(0, Lt, 2), (2, Lt, 1), (1, Lt, 3)],
            Starts => {
                let mut v = eq(0, 2);
                v.push((1, Lt, 3));
                v
            }
            During => vec![(2, Lt, 0), (1, Lt, 3)],
            Finishes => {
                let mut v = eq(1, 3);
                v.push((2, Lt, 0));
                v
            }
            Equals => {
                let mut v = eq(0, 2);
                v.extend(eq(1, 3));
                v
            }
            other => other
                .inverse()
                .endpoint_constraints()
                .into_iter()
                // swap the interval roles: 0↔2, 1↔3
                .map(|(a, r, b)| (a ^ 2, r, b ^ 2))
                .collect(),
        }
    }
}

/// A stored interval: endpoints plus the object it concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Start endpoint.
    pub start: OrdSym,
    /// End endpoint.
    pub end: OrdSym,
    /// The object the interval is about.
    pub object: ObjSym,
}

/// An interval store: a thin layer asserting `P(start, end, object)` facts
/// with `start <= end` into an underlying [`Database`].
#[derive(Debug, Clone)]
pub struct IntervalStore {
    /// The interval predicate, with signature `(ord, ord, obj)`.
    pub pred: PredSym,
    /// The underlying point database.
    pub db: Database,
    intervals: Vec<Interval>,
}

impl IntervalStore {
    /// Creates a store over a named ternary predicate.
    pub fn new(voc: &mut Vocabulary, pred_name: &str) -> Result<Self> {
        let pred = voc.pred(pred_name, &[Sort::Order, Sort::Order, Sort::Object])?;
        Ok(IntervalStore {
            pred,
            db: Database::new(),
            intervals: Vec::new(),
        })
    }

    /// Asserts an interval for `object`, creating fresh endpoints named
    /// from `hint`. Adds `start <= end` (degenerate intervals allowed; use
    /// [`IntervalStore::assert_proper`] to require `start < end`).
    pub fn assert(&mut self, voc: &mut Vocabulary, object: ObjSym, hint: &str) -> Interval {
        self.assert_with(voc, object, hint, OrderRel::Le)
    }

    /// Asserts an interval with strictly ordered endpoints.
    pub fn assert_proper(&mut self, voc: &mut Vocabulary, object: ObjSym, hint: &str) -> Interval {
        self.assert_with(voc, object, hint, OrderRel::Lt)
    }

    fn assert_with(
        &mut self,
        voc: &mut Vocabulary,
        object: ObjSym,
        hint: &str,
        rel: OrderRel,
    ) -> Interval {
        let start = voc.fresh_ord(&format!("{hint}_s"));
        let end = voc.fresh_ord(&format!("{hint}_e"));
        match rel {
            OrderRel::Lt => self.db.assert_lt(start, end),
            OrderRel::Le => self.db.assert_le(start, end),
            OrderRel::Ne => unreachable!("intervals are ordered"),
        }
        self.db.push_proper(ProperAtom {
            pred: self.pred,
            args: vec![Term::Ord(start), Term::Ord(end), Term::Obj(object)],
        });
        let iv = Interval { start, end, object };
        self.intervals.push(iv);
        iv
    }

    /// Asserts a known Allen relation between two stored intervals,
    /// translating it to endpoint order atoms in the database.
    /// Equality constraints become a `<=` pair (merged by N1).
    pub fn relate(&mut self, i: Interval, r: AllenRelation, j: Interval) {
        let endpoints = [i.start, i.end, j.start, j.end];
        for (a, rel, b) in r.endpoint_constraints() {
            match rel {
                OrderRel::Lt => self.db.assert_lt(endpoints[a], endpoints[b]),
                OrderRel::Le => self.db.assert_le(endpoints[a], endpoints[b]),
                OrderRel::Ne => unreachable!(),
            }
        }
    }

    /// The stored intervals, in assertion order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// The query "intervals `i` and `j` stand in relation `r`", as a
    /// positive existential query over this store's predicate: the
    /// endpoints are pinned to the stored constants with `<=`-pairs
    /// (merged by N1 after constant elimination), then constrained by the
    /// relation's endpoint atoms. Decide *necessity* with `D |= Φ`; decide
    /// *possibility* through [`IntervalStore::possibly_query`].
    pub fn relation_query(&self, i: Interval, r: AllenRelation, j: Interval) -> QueryExpr {
        let vars = ["s1", "e1", "s2", "e2"];
        let obj_vars = ["x1", "x2"];
        let pin = |v: &str, c: OrdSym| {
            QueryExpr::And(vec![
                QueryExpr::Order {
                    lhs: QTerm::Var(v.into()),
                    rel: OrderRel::Le,
                    rhs: QTerm::OrdConst(c),
                },
                QueryExpr::Order {
                    lhs: QTerm::OrdConst(c),
                    rel: OrderRel::Le,
                    rhs: QTerm::Var(v.into()),
                },
            ])
        };
        let mut parts = vec![
            QueryExpr::Proper {
                pred: self.pred,
                args: vec![
                    QTerm::Var(vars[0].into()),
                    QTerm::Var(vars[1].into()),
                    QTerm::Var(obj_vars[0].into()),
                ],
            },
            QueryExpr::Proper {
                pred: self.pred,
                args: vec![
                    QTerm::Var(vars[2].into()),
                    QTerm::Var(vars[3].into()),
                    QTerm::Var(obj_vars[1].into()),
                ],
            },
            pin(vars[0], i.start),
            pin(vars[1], i.end),
            pin(vars[2], j.start),
            pin(vars[3], j.end),
        ];
        for (a, rel, b) in r.endpoint_constraints() {
            parts.push(QueryExpr::Order {
                lhs: QTerm::Var(vars[a].into()),
                rel,
                rhs: QTerm::Var(vars[b].into()),
            });
        }
        let mut names: Vec<String> = vars.iter().map(|s| s.to_string()).collect();
        names.extend(obj_vars.iter().map(|s| s.to_string()));
        QueryExpr::Exists(names, Box::new(QueryExpr::And(parts)))
    }

    /// The disjunction of [`IntervalStore::relation_query`] over a set of
    /// relations — e.g. "possibly before" is the *failure* of the
    /// complementary necessity query.
    pub fn possibly_query(&self, i: Interval, rs: &[AllenRelation], j: Interval) -> QueryExpr {
        let complement: Vec<QueryExpr> = AllenRelation::ALL
            .iter()
            .filter(|r| !rs.contains(r))
            .map(|&r| self.relation_query(i, r, j))
            .collect();
        QueryExpr::Or(complement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::eliminate_constants;

    fn setup() -> (Vocabulary, IntervalStore, Interval, Interval) {
        let mut voc = Vocabulary::new();
        let mut store = IntervalStore::new(&mut voc, "IV").unwrap();
        let a = voc.obj("a");
        let b = voc.obj("b");
        let i = store.assert_proper(&mut voc, a, "i");
        let j = store.assert_proper(&mut voc, b, "j");
        (voc, store, i, j)
    }

    #[test]
    fn inverses_are_involutive() {
        for r in AllenRelation::ALL {
            assert_eq!(r.inverse().inverse(), r);
        }
        assert_eq!(AllenRelation::Equals.inverse(), AllenRelation::Equals);
    }

    #[test]
    fn endpoint_constraints_are_consistent() {
        // Each relation's constraints must be satisfiable with s1<e1,
        // s2<e2 — check against a brute-force placement of 4 endpoints.
        for r in AllenRelation::ALL {
            let cs = r.endpoint_constraints();
            let mut found = false;
            // endpoints take values 0..4 (with repetition)
            'outer: for mask in 0..(4u32.pow(4)) {
                let vals = [
                    (mask % 4) as i32,
                    (mask / 4 % 4) as i32,
                    (mask / 16 % 4) as i32,
                    (mask / 64 % 4) as i32,
                ];
                if vals[0] >= vals[1] || vals[2] >= vals[3] {
                    continue; // proper intervals
                }
                for &(a, rel, b) in &cs {
                    let ok = match rel {
                        OrderRel::Lt => vals[a] < vals[b],
                        OrderRel::Le => vals[a] <= vals[b],
                        OrderRel::Ne => vals[a] != vals[b],
                    };
                    if !ok {
                        continue 'outer;
                    }
                }
                found = true;
                break;
            }
            assert!(found, "{r:?} has unsatisfiable constraints");
        }
    }

    #[test]
    fn relations_are_mutually_exclusive_on_concrete_intervals() {
        // For concrete integer intervals, exactly one Allen relation holds.
        let cases = [
            ((0, 2), (5, 7), AllenRelation::Before),
            ((0, 2), (2, 7), AllenRelation::Meets),
            ((0, 4), (2, 7), AllenRelation::Overlaps),
            ((0, 2), (0, 7), AllenRelation::Starts),
            ((3, 4), (2, 7), AllenRelation::During),
            ((5, 7), (2, 7), AllenRelation::Finishes),
            ((2, 7), (2, 7), AllenRelation::Equals),
        ];
        for ((s1, e1), (s2, e2), expected) in cases {
            let vals = [s1, e1, s2, e2];
            let mut holding = Vec::new();
            for r in AllenRelation::ALL {
                let ok = r
                    .endpoint_constraints()
                    .iter()
                    .all(|&(a, rel, b)| match rel {
                        OrderRel::Lt => vals[a] < vals[b],
                        OrderRel::Le => vals[a] <= vals[b],
                        OrderRel::Ne => vals[a] != vals[b],
                    });
                if ok {
                    holding.push(r);
                }
            }
            assert_eq!(holding, vec![expected], "intervals {vals:?}");
        }
    }

    #[test]
    fn asserted_relation_becomes_necessary() {
        let (mut voc, mut store, i, j) = setup();
        store.relate(i, AllenRelation::Before, j);
        let q = store.relation_query(i, AllenRelation::Before, j);
        let (db, dnf) = eliminate_constants(&mut voc, &store.db, &q).unwrap();
        // decided by the naive engine through the normalized database
        let nd = db.normalize().unwrap();
        let mut all_models_satisfy = true;
        crate::toposort::for_each_minimal_model(&nd, &mut |m| {
            if !m.satisfies(&dnf) {
                all_models_satisfy = false;
                false
            } else {
                true
            }
        })
        .unwrap();
        assert!(all_models_satisfy, "asserted Before must be certain");
    }

    #[test]
    fn unrelated_intervals_have_no_necessary_relation() {
        let (mut voc, store, i, j) = setup();
        for r in AllenRelation::ALL {
            let q = store.relation_query(i, r, j);
            let (db, dnf) = eliminate_constants(&mut voc, &store.db, &q).unwrap();
            let nd = db.normalize().unwrap();
            let mut all = true;
            crate::toposort::for_each_minimal_model(&nd, &mut |m| {
                if !m.satisfies(&dnf) {
                    all = false;
                    false
                } else {
                    true
                }
            })
            .unwrap();
            assert!(
                !all,
                "{r:?} cannot be necessary between unrelated intervals"
            );
        }
    }

    #[test]
    fn possibly_query_complements_necessity() {
        let (mut voc, mut store, i, j) = setup();
        store.relate(i, AllenRelation::Before, j);
        // "possibly After" should FAIL: the complement (everything except
        // After) is certain.
        let poss_after = store.possibly_query(i, &[AllenRelation::After], j);
        let (db, dnf) = eliminate_constants(&mut voc, &store.db, &poss_after).unwrap();
        let nd = db.normalize().unwrap();
        let mut all = true;
        crate::toposort::for_each_minimal_model(&nd, &mut |m| {
            if !m.satisfies(&dnf) {
                all = false;
                false
            } else {
                true
            }
        })
        .unwrap();
        // complement certain ⟹ After impossible.
        assert!(
            all,
            "Before was asserted, so the non-After disjunction is certain"
        );
    }

    #[test]
    fn meets_merges_endpoints() {
        let (mut voc, mut store, i, j) = setup();
        store.relate(i, AllenRelation::Meets, j);
        let nd = store.db.normalize().unwrap();
        assert_eq!(
            nd.vertex(i.end),
            nd.vertex(j.start),
            "meets merges e1 with s2"
        );
        let _ = &mut voc;
    }
}
