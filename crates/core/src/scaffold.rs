//! Database-dependent, query-independent tables for the Theorem 5.3
//! disjunctive product search.
//!
//! The Thm 5.3 search explores tuples `(S, T, u₁…uₙ, x₁…xₙ)` whose first
//! two components are **antichains** of the database dag. Everything the
//! search derives from `(S, T)` alone — the up-sets `D↾S`, `D↾T`, the
//! provisional-point label `a(S,T)` (union of labels over
//! `D(S,T) = (D↾S)\(D↾T)`), and the (a)-transition targets obtained by
//! moving a minor vertex of `T` across — depends only on the *database*,
//! never on the query. Under repeated-query traffic (the
//! [`crate::session::Session`] serving pattern) recomputing those tables
//! per query is the dominant cost, so this module hoists them into a
//! [`DisjunctiveScaffold`]:
//!
//! * [`AntichainArena`] interns each antichain once, as a dense `u32` id
//!   with its vertex list and cached up-set — search states then carry two
//!   ids instead of two `Vec<u32>`s;
//! * [`PairTable`] memoizes, per `(S, T)` id pair, the label `a(S,T)`,
//!   whether `D(S,T)` is empty, and the interned `(S', T')` targets of
//!   every (a)-move;
//! * the scaffold itself precomputes the reachability closure, one
//!   topological order, and the initial antichain `min(D)` — the
//!   per-state `up_set`/`minor_within` graph traversals of the
//!   pre-interning engine all collapse into bitset unions over these.
//!
//! The pair table grows monotonically and is shared across queries
//! through a mutex: a search takes the lock for its whole run via
//! [`DisjunctiveScaffold::pairs`], and concurrent searches on one session
//! fall back to a private table instead of serializing (the
//! [`DisjunctiveScaffold::contention_fallbacks`] counter reports how
//! often). Its size is bounded by the number of reachable `(S, T)` pairs
//! — the `|D|^{2k}` factor of Theorem 5.3 — i.e. by the state count of
//! the largest search run so far, never more; long-lived sessions can
//! additionally bound it with [`DisjunctiveScaffold::with_max_pairs`],
//! which evicts the least-recently-used [`PairInfo`]s between search
//! runs (evicted pairs recompute transparently through
//! [`PairTable::ensure`]).
//!
//! ## Incremental maintenance (warm sessions surviving writes)
//!
//! A scaffold does not have to be rebuilt when its database mutates:
//!
//! * an **acyclic order-edge insert** `u → v` patches the reachability
//!   closure incrementally ([`crate::ordgraph::OrderGraph::insert_dag_edge_tracked`]),
//!   repairs the topological order locally (Pearce–Kelly,
//!   [`crate::ordgraph::OrderGraph::repair_topo_after_edge`]), and then
//!   invalidates *selectively* ([`DisjunctiveScaffold::patch_order_edge`]):
//!   only antichains whose up-set contains `u` are touched — their
//!   up-sets are unioned with `reach(v)`, and the ones whose minimal
//!   vertices change (e.g. an antichain that became a chain under the new
//!   edge) are tombstoned in the arena — and only the `(S, T)` pairs
//!   whose up-sets contain `u` are evicted. Every kept pair is provably
//!   byte-identical to a fresh recomputation: its region excludes `u`,
//!   so its `D(S,T)`, label union, minors, and (a)-move targets cannot
//!   have changed;
//! * a **label-only fact insert** patches the affected `a(S,T)` unions in
//!   place ([`DisjunctiveScaffold::patch_label_insert`]): the label of a
//!   pair grows by the inserted predicate exactly when the vertex lies in
//!   its `D(S,T)`;
//! * a **`!=` insert** bumps an epoch
//!   ([`DisjunctiveScaffold::note_ne_mutation`]); stale
//!   [`PairInfo::ne_blocked`] bits are recomputed lazily on the next
//!   [`PairTable::ensure`] of the pair.
//!
//! [`DisjunctiveScaffold::validate`] cross-checks a patched scaffold
//! against fresh recomputation (the property suites drive it after every
//! random mutation).
//!
//! ## Sharing across snapshots (MVCC serving)
//!
//! A warm scaffold can be **shared read-only** across session snapshots:
//! [`crate::session::Session`] caches it behind an `Arc`, so freezing a
//! snapshot ([`crate::session::Session::freeze`]) costs one reference
//! count, not a rebuild. Concurrent searches on the shared value already
//! coordinate through the pair-table mutex (with the private-table
//! contention fallback), so nothing else changes for readers. The write
//! side must never patch a scaffold that a snapshot can still see:
//! before mutating, the owning session splits off a private copy via
//! [`DisjunctiveScaffold::cow_clone`] whenever the `Arc` is shared.
//! `cow_clone` deliberately uses `try_lock` on the pair table — if a
//! reader's search run holds it, the writer takes a fresh (empty) pair
//! table rather than blocking behind the search; the memoized pairs
//! recompute lazily, the graph-shaped tables (reachability closure,
//! topological order, `min(D)`) copy either way.
//!
//! ## Sub-scaffolds (§7 `!=` restrictions)
//!
//! A database `!=` constraint (§7) excludes exactly the minimal models
//! that merge the constrained pair into one point — in search terms, the
//! (c)-commits whose committed set `D(S,T)` contains both ends of the
//! pair. A [`SubScaffold`] projects a scaffold onto that restricted
//! region: same dag, so the parent's reachability closure, topological
//! order, interned antichain arena, and `(S, T)` move tables are reused
//! verbatim; the only per-expansion state is one *blocked-commit* bit
//! per `(S, T)` pair ([`PairInfo::ne_blocked`]), grown lazily alongside
//! the pair table and invalidated with it. The view itself is two
//! words, so [`crate::session::Session::sub_scaffold`] re-projects it
//! per evaluation for free — prepared `!=` queries hit warm
//! sub-scaffold state without recomputing anything database-sized.

use crate::bitset::BitSet;
use crate::bitset::PredSet;
use crate::fxhash::FxHashMap;
use crate::monadic::MonadicDatabase;
use crate::ordgraph::{EdgeInsert, OrderGraph};
use crate::sym::PredSym;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Interned antichains of one database dag: each distinct antichain gets a
/// dense `u32` id, its sorted vertex list, and its cached up-set `D↾S`.
///
/// Under incremental order-edge maintenance an entry can be
/// **tombstoned**: a new edge can turn its vertex list into a chain (or
/// otherwise stop it being the minimal generator of its up-set), after
/// which the id must never be handed out again. Tombstoned slots keep
/// their index (ids held by evicted pairs stay dense) but leave the
/// intern map, and — because edges are only ever added — a tombstoned
/// vertex list can never become a minimal generator again, so the slot
/// is dead forever.
#[derive(Debug, Default, Clone)]
pub struct AntichainArena {
    ids: FxHashMap<Box<[u32]>, u32>,
    verts: Vec<Box<[u32]>>,
    ups: Vec<BitSet>,
    dead: Vec<bool>,
}

impl AntichainArena {
    /// Interns `verts` (sorted ascending) with its already-known up-set.
    /// The up-set is trusted: callers derive it from an up-closed set
    /// whose minimal vertices are exactly `verts`.
    pub fn intern(&mut self, verts: Vec<u32>, up: BitSet) -> u32 {
        debug_assert!(verts.windows(2).all(|w| w[0] < w[1]), "sorted antichain");
        let key: Box<[u32]> = verts.into_boxed_slice();
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = u32::try_from(self.verts.len()).expect("antichain arena overflow");
        self.ids.insert(key.clone(), id);
        self.verts.push(key);
        self.ups.push(up);
        self.dead.push(false);
        id
    }

    /// The sorted vertex list of an interned antichain.
    pub fn verts(&self, id: u32) -> &[u32] {
        &self.verts[id as usize]
    }

    /// The cached up-set `D↾S` of an interned antichain.
    pub fn up(&self, id: u32) -> &BitSet {
        &self.ups[id as usize]
    }

    /// True when the id has not been tombstoned by an order-edge patch.
    pub fn is_live(&self, id: u32) -> bool {
        !self.dead[id as usize]
    }

    /// Tombstones an entry whose vertex list stopped being the minimal
    /// generator of its up-set (see the type docs).
    fn tombstone(&mut self, id: u32) {
        self.ids.remove(&self.verts[id as usize]);
        self.dead[id as usize] = true;
    }

    /// Number of interned antichains (live and tombstoned).
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }
}

/// The query-independent facts about one `(S, T)` pair of antichains.
#[derive(Debug, Clone)]
pub struct PairInfo {
    /// `a(S,T)`: the union of labels over `D(S,T) = (D↾S)\(D↾T)` — the
    /// provisional label of the next model point.
    pub label: PredSet,
    /// True when `D(S,T)` is empty (no (c)-commit edge fires).
    pub dst_empty: bool,
    /// True when `D(S,T)` contains both ends of some `!=` pair of the
    /// database (§7): committing it would merge a constrained pair into
    /// one model point, so a [`SubScaffold`] projected onto the
    /// separating region blocks the (c)-commit here. Always `false` for
    /// `[<,<=]` databases. A contradictory pair `(v, v)` blocks every
    /// commit containing `v`, making the final state unreachable — the
    /// search then correctly reports the unsatisfiable database as
    /// entailing everything. Recomputed lazily by [`PairTable::ensure`]
    /// after a `!=` mutation (`ne_stamp` tracks the epoch it was
    /// computed at).
    pub ne_blocked: bool,
    /// The `(S', T')` antichain-id targets of every (a)-move: one per
    /// minor vertex of `T` within `D↾S ∪ D↾T`, in `T`-vertex order.
    pub moves: Vec<(u32, u32)>,
    /// `!=` epoch `ne_blocked` was computed at (see
    /// [`PairTable::ensure`]).
    ne_stamp: u64,
    /// Logical access clock for LRU-ish eviction under
    /// [`PairTable::enforce_cap`].
    last_use: u64,
}

/// Memoized `(S, T)` pair facts over an [`AntichainArena`].
#[derive(Debug, Default, Clone)]
pub struct PairTable {
    arena: AntichainArena,
    empty_id: u32,
    initial_id: u32,
    pair_of: FxHashMap<(u32, u32), u32>,
    infos: Vec<PairInfo>,
    /// Info slots released by eviction/invalidation, reused by `ensure`.
    free: Vec<u32>,
    /// Current `!=` epoch; `PairInfo::ne_stamp` lags it until resync.
    ne_epoch: u64,
    /// Monotone access clock feeding `PairInfo::last_use`.
    use_clock: u64,
    /// Lifetime count of pairs evicted — by the LRU cap
    /// ([`PairTable::enforce_cap`]) or by selective order-edge
    /// invalidation ([`PairTable::patch_order_edge`]).
    evictions: u64,
}

impl PairTable {
    fn new(n: usize, initial_t: &[u32]) -> Self {
        let mut arena = AntichainArena::default();
        let empty_id = arena.intern(Vec::new(), BitSet::with_capacity(n));
        // `D↾min(D)` is the whole dag: every vertex is reachable from a
        // minimal one.
        let initial_id = arena.intern(initial_t.to_vec(), BitSet::full(n));
        PairTable {
            arena,
            empty_id,
            initial_id,
            pair_of: FxHashMap::default(),
            infos: Vec::new(),
            free: Vec::new(),
            ne_epoch: 0,
            use_clock: 0,
            evictions: 0,
        }
    }

    /// Id of the empty antichain (the final `S = T = ∅` components).
    pub fn empty_id(&self) -> u32 {
        self.empty_id
    }

    /// Id of the initial antichain `min(D)`.
    pub fn initial_id(&self) -> u32 {
        self.initial_id
    }

    /// The interning arena (read access for search-side assertions).
    pub fn arena(&self) -> &AntichainArena {
        &self.arena
    }

    /// Number of memoized (live) pairs.
    pub fn pair_count(&self) -> usize {
        self.pair_of.len()
    }

    /// Lifetime count of pairs evicted from this table (LRU cap +
    /// selective order-edge invalidation).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Releases an evicted info slot: clears the heap-carrying payload
    /// (label set, move list) so the cap actually bounds resident
    /// memory, then queues the slot for reuse.
    fn release_slot(&mut self, idx: u32) {
        let info = &mut self.infos[idx as usize];
        info.label = PredSet::new();
        info.moves = Vec::new();
        self.free.push(idx);
        self.evictions += 1;
    }

    /// Index of the pair `(s, t)`, computing and memoizing its
    /// [`PairInfo`] on first use. `scaffold` and `db` must be the ones
    /// this table was created for. On a hit, a stale
    /// [`PairInfo::ne_blocked`] bit (the `!=` epoch moved under it) is
    /// recomputed here — the lazy half of `!=` mutation survival.
    pub fn ensure(
        &mut self,
        scaffold: &DisjunctiveScaffold,
        db: &MonadicDatabase,
        s: u32,
        t: u32,
    ) -> u32 {
        self.use_clock += 1;
        if let Some(&idx) = self.pair_of.get(&(s, t)) {
            crate::counters::count_pair_hit();
            let info = &mut self.infos[idx as usize];
            info.last_use = self.use_clock;
            if info.ne_stamp != self.ne_epoch {
                info.ne_blocked = !info.dst_empty && Self::ne_blocked_of(&self.arena, db, s, t);
                info.ne_stamp = self.ne_epoch;
            }
            return idx;
        }
        crate::counters::count_pair_miss();
        let info = self.compute(scaffold, db, s, t);
        let idx = match self.free.pop() {
            Some(idx) => {
                self.infos[idx as usize] = info;
                idx
            }
            None => {
                let idx = u32::try_from(self.infos.len()).expect("pair table overflow");
                self.infos.push(info);
                idx
            }
        };
        self.pair_of.insert((s, t), idx);
        idx
    }

    /// The memoized facts of pair index `idx` (from [`PairTable::ensure`]).
    pub fn info(&self, idx: u32) -> &PairInfo {
        &self.infos[idx as usize]
    }

    /// Whether `D(S,T)` merges a database `!=` pair, membership-tested
    /// straight off the cached up-sets (`x ∈ D(S,T)` iff `x ∈ D↾S` and
    /// `x ∉ D↾T`) — no materialized difference set needed.
    fn ne_blocked_of(arena: &AntichainArena, db: &MonadicDatabase, s: u32, t: u32) -> bool {
        let (up_s, up_t) = (arena.up(s), arena.up(t));
        let in_dst = |x: usize| up_s.contains(x) && !up_t.contains(x);
        db.ne.iter().any(|&(a, b)| in_dst(a) && in_dst(b))
    }

    fn compute(
        &mut self,
        scaffold: &DisjunctiveScaffold,
        db: &MonadicDatabase,
        s: u32,
        t: u32,
    ) -> PairInfo {
        debug_assert_eq!(db.graph.len(), scaffold.n, "scaffold/database mismatch");
        let up_s = self.arena.up(s).clone();
        let up_t = self.arena.up(t).clone();
        // a(S,T) over D(S,T) = (D↾S) \ (D↾T).
        let mut dst = up_s.clone();
        dst.difference_with(&up_t);
        let mut label = PredSet::new();
        for v in dst.iter() {
            label.union_with(&db.labels[v]);
        }
        let dst_empty = dst.is_empty();
        let ne_blocked = !dst_empty && Self::ne_blocked_of(&self.arena, db, s, t);
        let (ne_stamp, last_use) = (self.ne_epoch, self.use_clock);
        // (a)-moves: each minor vertex v of T within D↾S ∪ D↾T crosses to
        // the S side; both sides stay represented by the minimal vertices
        // of their (still up-closed) regions.
        let mut region = up_s.clone();
        region.union_with(&up_t);
        let minors = db.graph.minor_within_order(&region, &scaffold.topo);
        let t_verts: Vec<u32> = self.arena.verts(t).to_vec();
        let mut moves = Vec::with_capacity(t_verts.len());
        for &v in &t_verts {
            if !minors.contains(v as usize) {
                continue;
            }
            let mut up_s2 = up_s.clone();
            up_s2.union_with(&scaffold.reach[v as usize]);
            let s2_verts: Vec<u32> = db
                .graph
                .minimal_within(&up_s2)
                .iter()
                .map(|w| w as u32)
                .collect();
            let s2 = self.arena.intern(s2_verts, up_s2);
            // v is minimal within D↾T, so removing it keeps the set
            // up-closed.
            let mut up_t2 = up_t.clone();
            up_t2.remove(v as usize);
            let t2_verts: Vec<u32> = db
                .graph
                .minimal_within(&up_t2)
                .iter()
                .map(|w| w as u32)
                .collect();
            let t2 = self.arena.intern(t2_verts, up_t2);
            moves.push((s2, t2));
        }
        PairInfo {
            label,
            dst_empty,
            ne_blocked,
            moves,
            ne_stamp,
            last_use,
        }
    }

    /// Bumps the `!=` epoch: every cached `ne_blocked` bit becomes stale
    /// and is recomputed on its next [`PairTable::ensure`].
    fn bump_ne_epoch(&mut self) {
        self.ne_epoch += 1;
    }

    /// Patches every cached `a(S,T)` union for the label-only fact insert
    /// `pred(w)`: a pair's label gains `pred` exactly when `w ∈ D(S,T)`.
    /// Nothing else in a [`PairInfo`] depends on labels, so this is the
    /// complete invalidation for a label insert.
    fn patch_label_insert(&mut self, w: usize, pred: PredSym) {
        let PairTable {
            arena,
            pair_of,
            infos,
            ..
        } = self;
        for (&(s, t), &idx) in pair_of.iter() {
            if arena.up(s).contains(w) && !arena.up(t).contains(w) {
                infos[idx as usize].label.insert(pred);
            }
        }
    }

    /// Selective invalidation for an acyclic order-edge insert `u → v`
    /// (the heavy half of [`DisjunctiveScaffold::patch_order_edge`]):
    ///
    /// * every live antichain whose up-set contains `u` is *affected*;
    ///   when the closure grew (`reach_v` is `Some`), its up-set is
    ///   unioned with `reach(v)` and its minimal vertices are re-derived
    ///   — entries whose vertex list stops being minimal (antichains that
    ///   became chains) are tombstoned;
    /// * every memoized pair with an affected endpoint is evicted (its
    ///   `D(S,T)`, label union, minors, or move targets may have
    ///   changed); all other pairs are untouched — their regions exclude
    ///   `u`, so nothing they memoize can differ from a fresh
    ///   recomputation;
    /// * the initial antichain (up-set = the whole dag, which always
    ///   contains `u`) is re-interned when `min(D)` changed.
    fn patch_order_edge(
        &mut self,
        graph: &OrderGraph,
        u: usize,
        reach_v: Option<&BitSet>,
        initial_t: &[u32],
        n: usize,
    ) {
        let mut affected = vec![false; self.arena.len()];
        for id in 0..self.arena.len() as u32 {
            if !self.arena.is_live(id) || !self.arena.ups[id as usize].contains(u) {
                continue;
            }
            affected[id as usize] = true;
            if let Some(rv) = reach_v {
                self.arena.ups[id as usize].union_with(rv);
                // New comparabilities can demote members even when the
                // up-set itself did not grow, so always re-derive.
                let minimal: Vec<u32> = graph
                    .minimal_within(&self.arena.ups[id as usize])
                    .iter()
                    .map(|w| w as u32)
                    .collect();
                if minimal.as_slice() != self.arena.verts(id) {
                    self.arena.tombstone(id);
                }
            }
        }
        if !self.arena.is_live(self.initial_id) || self.arena.verts(self.initial_id) != initial_t {
            self.initial_id = self.arena.intern(initial_t.to_vec(), BitSet::full(n));
        }
        let mut evicted: Vec<u32> = Vec::new();
        self.pair_of.retain(|&(s, t), &mut idx| {
            if affected[s as usize] || affected[t as usize] {
                evicted.push(idx);
                false
            } else {
                true
            }
        });
        for idx in evicted {
            self.release_slot(idx);
        }
    }

    /// Evicts the least-recently-used pairs down to `cap` entries.
    /// Called between search runs ([`DisjunctiveScaffold::pairs`]), never
    /// during one — in-flight pair indices stay valid for a whole search.
    fn enforce_cap(&mut self, cap: usize) {
        if self.pair_of.len() <= cap {
            return;
        }
        let mut entries: Vec<((u32, u32), u64)> = self
            .pair_of
            .iter()
            .map(|(&key, &idx)| (key, self.infos[idx as usize].last_use))
            .collect();
        entries.sort_unstable_by_key(|&(_, last_use)| std::cmp::Reverse(last_use)); // hottest first
        for &(key, _) in &entries[cap..] {
            let idx = self.pair_of.remove(&key).expect("entry listed above");
            self.release_slot(idx);
        }
    }
}

/// A scaffold view projecting a parent [`DisjunctiveScaffold`] onto the
/// expansion-restricted region of the database's `!=` constraints (§7):
/// the models that separate every constrained pair. The dag is
/// unchanged, so the parent's reachability closure, topological order,
/// interned antichain arena, and memoized `(S, T)` move tables serve
/// unmodified — the restriction reduces to blocking the (c)-commits
/// whose committed set contains a constrained pair, read off
/// [`PairInfo::ne_blocked`]. The view itself is two words; all
/// database-sized state stays in (and is shared through) the parent.
#[derive(Debug, Clone, Copy)]
pub struct SubScaffold<'a> {
    parent: &'a DisjunctiveScaffold,
    /// True when the database constrains at least one pair; an
    /// unrestricted view never blocks, even though the pair table
    /// carries blocked bits for the database's `!=` pairs.
    enforce: bool,
}

impl<'a> SubScaffold<'a> {
    /// Projects `parent` onto the region separating `db`'s `!=` pairs —
    /// the identity view for `[<,<=]` databases. `parent` must be the
    /// scaffold of `db` (the blocked bits memoized in its pair table are
    /// computed from `db.ne`).
    pub fn project(parent: &'a DisjunctiveScaffold, db: &MonadicDatabase) -> Self {
        debug_assert_eq!(parent.n, db.graph.len(), "scaffold/database mismatch");
        SubScaffold {
            parent,
            enforce: !db.ne.is_empty(),
        }
    }

    /// The parent scaffold (reachability, topo order, arena, pair
    /// tables).
    pub fn parent(&self) -> &'a DisjunctiveScaffold {
        self.parent
    }

    /// True when no `!=` pair is enforced (the view is the parent).
    pub fn is_unrestricted(&self) -> bool {
        !self.enforce
    }

    /// Takes the parent's shared pair table for one search run (see
    /// [`DisjunctiveScaffold::pairs`]).
    pub fn pairs(&self) -> PairsHandle<'a> {
        self.parent.pairs()
    }

    /// True when the (c)-commit of this `(S, T)` pair is blocked: its
    /// committed set would merge a `!=`-constrained pair.
    pub fn blocks(&self, info: &PairInfo) -> bool {
        self.enforce && info.ne_blocked
    }
}

/// A locked (or private) [`PairTable`] handed to one search run.
#[derive(Debug)]
pub enum PairsHandle<'a> {
    /// The session-shared table, held for the duration of the search.
    Shared(MutexGuard<'a, PairTable>),
    /// A private table: the shared one was contended by a concurrent
    /// search on the same scaffold.
    Local(PairTable),
}

impl std::ops::Deref for PairsHandle<'_> {
    type Target = PairTable;

    fn deref(&self) -> &PairTable {
        match self {
            PairsHandle::Shared(g) => g,
            PairsHandle::Local(t) => t,
        }
    }
}

impl std::ops::DerefMut for PairsHandle<'_> {
    fn deref_mut(&mut self) -> &mut PairTable {
        match self {
            PairsHandle::Shared(g) => g,
            PairsHandle::Local(t) => t,
        }
    }
}

/// Everything the Theorem 5.3 search derives from the database alone,
/// computed once per [`crate::session::Session`] (or once per one-shot
/// call) and reused by every disjunctive evaluation — and *kept alive*
/// across in-place database mutations through the `patch_*` methods. See
/// the module docs.
#[derive(Debug)]
pub struct DisjunctiveScaffold {
    n: usize,
    /// Reachability closure of the dag: `reach[v]` = vertices reachable
    /// from `v`, inclusive. `Arc`-shared across copy-on-write clones —
    /// at n vertices it is n heap bitsets, by far the heaviest
    /// graph-shaped table — and unshared (`Arc::make_mut`) only by the
    /// first order-edge patch after a publish; label and `!=` patches
    /// never touch it.
    reach: Arc<Vec<BitSet>>,
    /// One topological order (feeds `minor_within_order`), repaired
    /// locally (Pearce–Kelly) on edge inserts.
    topo: Vec<u32>,
    /// Inverse of `topo`: `pos[topo[i]] = i`.
    pos: Vec<u32>,
    /// The initial antichain `min(D)`, sorted.
    initial_t: Vec<u32>,
    pairs: Mutex<PairTable>,
    /// Pair-count bound enforced (LRU-ish) between search runs; `None`
    /// means unbounded.
    max_pairs: Option<usize>,
    /// How often [`DisjunctiveScaffold::pairs`] found the shared table
    /// contended and handed out a private one instead.
    contention: AtomicU64,
    /// Epoch tag of the pair-table *lineage*: 0 on a fresh build, stable
    /// across [`DisjunctiveScaffold::cow_clone`]s that carried the warm
    /// table over, bumped when contention forced the clone to restart
    /// from an empty table. A published snapshot whose writer-side
    /// successor reports the same generation provably inherited the
    /// reader-warmed `D(S,T)` memo — the observability hook behind
    /// skipping the per-publish prepared-registry pre-run.
    pair_generation: u64,
}

impl DisjunctiveScaffold {
    /// Builds the scaffold of a monadic database.
    pub fn new(db: &MonadicDatabase) -> Self {
        let n = db.graph.len();
        let reach = Arc::new(db.graph.reachability());
        let topo: Vec<u32> = db.graph.topo_order().iter().map(|&v| v as u32).collect();
        let mut pos = vec![0u32; n];
        for (i, &v) in topo.iter().enumerate() {
            pos[v as usize] = i as u32;
        }
        let initial_t: Vec<u32> = db
            .graph
            .minimal_vertices()
            .iter()
            .map(|v| v as u32)
            .collect();
        let pairs = Mutex::new(PairTable::new(n, &initial_t));
        DisjunctiveScaffold {
            n,
            reach,
            topo,
            pos,
            initial_t,
            pairs,
            max_pairs: None,
            contention: AtomicU64::new(0),
            pair_generation: 0,
        }
    }

    /// A copy-on-write clone for snapshot publication: the reachability
    /// closure is an `Arc` bump (unshared only by a later edge patch),
    /// the small flat tables (topo order, its inverse, initial
    /// antichain) are single-`memcpy` copies, and the shared pair table
    /// is cloned through `try_lock` —
    /// when a concurrent search currently holds it, the clone starts
    /// from a **fresh** pair table instead of waiting, so a long
    /// countermodel run on a published snapshot can never block the
    /// writer that is splitting off its own patchable copy. Evicted this
    /// way, the memoized pairs recompute transparently on next use; the
    /// contention-fallback count carries over either way.
    pub fn cow_clone(&self) -> DisjunctiveScaffold {
        let (pairs, pair_generation) = match self.pairs.try_lock() {
            Ok(g) => (g.clone(), self.pair_generation),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                (p.into_inner().clone(), self.pair_generation)
            }
            Err(std::sync::TryLockError::WouldBlock) => (
                PairTable::new(self.n, &self.initial_t),
                // The warm memo was lost to contention: new lineage.
                self.pair_generation + 1,
            ),
        };
        DisjunctiveScaffold {
            n: self.n,
            reach: Arc::clone(&self.reach),
            topo: self.topo.clone(),
            pos: self.pos.clone(),
            initial_t: self.initial_t.clone(),
            pairs: Mutex::new(pairs),
            max_pairs: self.max_pairs,
            contention: AtomicU64::new(self.contention.load(Ordering::Relaxed)),
            pair_generation,
        }
    }

    /// Bounds the shared pair table to `cap` memoized pairs, evicting the
    /// least-recently-used entries between search runs (`None` =
    /// unbounded, the default). Evicted pairs recompute transparently on
    /// next use.
    pub fn with_max_pairs(mut self, cap: Option<usize>) -> Self {
        self.max_pairs = cap;
        self
    }

    /// Number of dag vertices the scaffold was built for.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The reachability closure.
    pub fn reach(&self) -> &[BitSet] {
        &self.reach
    }

    /// Mutable closure access for
    /// [`crate::ordgraph::OrderGraph::insert_dag_edge_tracked`] — the
    /// session patches the closure in the same motion as the graph edge,
    /// then finishes with [`DisjunctiveScaffold::patch_order_edge`].
    pub fn reach_mut(&mut self) -> &mut [BitSet] {
        Arc::make_mut(&mut self.reach).as_mut_slice()
    }

    /// The initial antichain `min(D)`.
    pub fn initial_t(&self) -> &[u32] {
        &self.initial_t
    }

    /// Takes the shared pair table for one search run, falling back to a
    /// fresh private table when another search currently holds it (so
    /// concurrent queries on one session never serialize on the lock; the
    /// fallback count is reported by
    /// [`DisjunctiveScaffold::contention_fallbacks`]). The
    /// [`DisjunctiveScaffold::with_max_pairs`] bound is enforced here,
    /// *before* the run starts — pair indices handed out during a search
    /// are never evicted under it.
    pub fn pairs(&self) -> PairsHandle<'_> {
        match self.pairs.try_lock() {
            Ok(mut guard) => {
                if let Some(cap) = self.max_pairs {
                    guard.enforce_cap(cap);
                }
                PairsHandle::Shared(guard)
            }
            Err(std::sync::TryLockError::Poisoned(p)) => PairsHandle::Shared(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                PairsHandle::Local(PairTable::new(self.n, &self.initial_t))
            }
        }
    }

    /// The pair-table lineage epoch: stable across copy-on-write clones
    /// that carried the warm `D(S,T)` memo over, bumped when a clone had
    /// to restart from an empty table because a concurrent search held
    /// the shared one. Equal generations across a publish ⇒ the new
    /// snapshot inherited every reader-warmed pair.
    pub fn pair_generation(&self) -> u64 {
        self.pair_generation
    }

    /// How many times a search run found the shared pair table locked by
    /// a concurrent run and fell back to a private table (the
    /// multi-threaded serving harness watches this).
    pub fn contention_fallbacks(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }

    /// Number of `(S, T)` pairs memoized so far (observability hook; 0
    /// until the first disjunctive search runs).
    pub fn cached_pair_count(&self) -> usize {
        match self.pairs.try_lock() {
            Ok(g) => g.pair_count(),
            Err(_) => 0,
        }
    }

    /// Lifetime count of pairs evicted from the shared table — by the
    /// [`DisjunctiveScaffold::with_max_pairs`] LRU bound or by selective
    /// order-edge invalidation (0 while a concurrent search holds the
    /// table; private fallback tables are not counted).
    pub fn pair_evictions(&self) -> u64 {
        match self.pairs.try_lock() {
            Ok(g) => g.evictions(),
            Err(_) => 0,
        }
    }

    fn pairs_mut(&mut self) -> &mut PairTable {
        self.pairs.get_mut().unwrap_or_else(|p| p.into_inner())
    }

    /// Completes the incremental maintenance of an acyclic order-edge
    /// insert `u → v` whose closure patch already ran through
    /// [`crate::ordgraph::OrderGraph::insert_dag_edge_tracked`] against
    /// [`DisjunctiveScaffold::reach_mut`]: repairs the topological order
    /// locally, refreshes `min(D)`, and selectively invalidates the pair
    /// table/arena (see [`PairTable::patch_order_edge`] — only entries
    /// whose up-sets contain `u` are touched). `db` must already carry
    /// the new edge; `outcome`/`changed` are `insert_dag_edge_tracked`'s
    /// results. An [`EdgeInsert::Unchanged`] write is a complete no-op.
    pub fn patch_order_edge(
        &mut self,
        db: &MonadicDatabase,
        u: usize,
        v: usize,
        outcome: EdgeInsert,
        changed: &BitSet,
    ) {
        debug_assert_eq!(db.graph.len(), self.n, "vertex set must be unchanged");
        if outcome == EdgeInsert::Unchanged {
            return;
        }
        if outcome == EdgeInsert::New {
            db.graph
                .repair_topo_after_edge(&mut self.topo, &mut self.pos, u, v);
            // `min(D)` shrinks exactly when v lost its first in-edge.
            self.initial_t = db
                .graph
                .minimal_vertices()
                .iter()
                .map(|w| w as u32)
                .collect();
        }
        let reach_v = if changed.is_empty() {
            // The edge added no reachability (a `<=` → `<` upgrade or a
            // shortcut): up-sets and minimal vertices are untouched, but
            // pairs whose region contains `u` still see different minors.
            None
        } else {
            Some(self.reach[v].clone())
        };
        let (graph, initial_t, n) = (&db.graph, std::mem::take(&mut self.initial_t), self.n);
        self.pairs_mut()
            .patch_order_edge(graph, u, reach_v.as_ref(), &initial_t, n);
        self.initial_t = initial_t;
    }

    /// Incremental maintenance of the label-only fact insert `pred(w)`:
    /// patches the affected `a(S,T)` unions in place. Everything else in
    /// the scaffold is label-independent.
    pub fn patch_label_insert(&mut self, w: usize, pred: PredSym) {
        debug_assert!(w < self.n, "vertex must be known");
        self.pairs_mut().patch_label_insert(w, pred);
    }

    /// Incremental maintenance of a `!=` insert over known vertices: the
    /// graph tables are untouched; cached [`PairInfo::ne_blocked`] bits
    /// become stale and are recomputed lazily on next access.
    pub fn note_ne_mutation(&mut self) {
        self.pairs_mut().bump_ne_epoch();
    }

    /// Cross-checks every cached structure against fresh recomputation
    /// from `db` — the oracle the incremental-vs-fresh property suites
    /// run after each random mutation. Returns a description of the
    /// first divergence found. Expensive (rebuilds closures and re-derives
    /// every memoized pair); diagnostics/tests only.
    pub fn validate(&self, db: &MonadicDatabase) -> std::result::Result<(), String> {
        if db.graph.len() != self.n {
            return Err(format!("vertex count {} != db {}", self.n, db.graph.len()));
        }
        if *self.reach != db.graph.reachability() {
            return Err("patched reachability closure != fresh closure".into());
        }
        for (i, &w) in self.topo.iter().enumerate() {
            if self.pos[w as usize] as usize != i {
                return Err(format!("pos is not the inverse of topo at {i}"));
            }
        }
        for (a, b, _) in db.graph.edges() {
            if self.pos[a] >= self.pos[b] {
                return Err(format!("topo order violates edge {a} -> {b}"));
            }
        }
        let fresh_min: Vec<u32> = db
            .graph
            .minimal_vertices()
            .iter()
            .map(|w| w as u32)
            .collect();
        if self.initial_t != fresh_min {
            return Err(format!(
                "initial antichain {:?} != fresh min {:?}",
                self.initial_t, fresh_min
            ));
        }
        let table = match self.pairs.try_lock() {
            Ok(g) => g,
            Err(_) => return Err("pair table is locked by a concurrent run".into()),
        };
        // Arena invariants: every live entry's up-set and minimality.
        // (Up-sets are compared semantically — `BitSet`'s derived
        // equality distinguishes trailing zero words.)
        let sets_equal = |a: &BitSet, b: &BitSet| a.is_subset(b) && b.is_subset(a);
        for id in 0..table.arena.len() as u32 {
            if !table.arena.is_live(id) {
                continue;
            }
            let verts: BitSet = table.arena.verts(id).iter().map(|&w| w as usize).collect();
            if !sets_equal(table.arena.up(id), &db.graph.up_set(&verts)) {
                return Err(format!("arena id {id}: stale up-set"));
            }
            let minimal: Vec<u32> = db
                .graph
                .minimal_within(table.arena.up(id))
                .iter()
                .map(|w| w as u32)
                .collect();
            if minimal.as_slice() != table.arena.verts(id) {
                return Err(format!("arena id {id}: verts are not minimal"));
            }
        }
        if !table.arena.is_live(table.initial_id)
            || table.arena.verts(table.initial_id) != self.initial_t
        {
            return Err("initial antichain id is dead or mismatched".into());
        }
        // Every memoized pair must equal a fresh recomputation, compared
        // through a shadow table (ids differ; vertex lists must not).
        let mut shadow = PairTable::new(self.n, &self.initial_t);
        for (&(s, t), &idx) in &table.pair_of {
            if !table.arena.is_live(s) || !table.arena.is_live(t) {
                return Err(format!("pair ({s},{t}) references a tombstoned antichain"));
            }
            let s2 = shadow
                .arena
                .intern(table.arena.verts(s).to_vec(), table.arena.up(s).clone());
            let t2 = shadow
                .arena
                .intern(table.arena.verts(t).to_vec(), table.arena.up(t).clone());
            let sidx = shadow.ensure(self, db, s2, t2);
            let (got, want) = (table.info(idx), shadow.info(sidx));
            if got.label != want.label || got.dst_empty != want.dst_empty {
                return Err(format!("pair ({s},{t}): stale label or D(S,T) emptiness"));
            }
            if got.ne_stamp == table.ne_epoch && got.ne_blocked != want.ne_blocked {
                return Err(format!("pair ({s},{t}): stale synced ne_blocked bit"));
            }
            if got.moves.len() != want.moves.len() {
                return Err(format!("pair ({s},{t}): move count drifted"));
            }
            for (&(a, b), &(c, d)) in got.moves.iter().zip(want.moves.iter()) {
                if table.arena.verts(a) != shadow.arena.verts(c)
                    || table.arena.verts(b) != shadow.arena.verts(d)
                {
                    return Err(format!("pair ({s},{t}): stale move target"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::OrderRel::{Le, Lt};
    use crate::ordgraph::OrderGraph;
    use crate::sym::PredSym;
    use std::sync::Arc;

    fn ps(ids: &[usize]) -> PredSet {
        ids.iter().map(|&i| PredSym::from_index(i)).collect()
    }

    fn diamond() -> MonadicDatabase {
        // 0 < {1, 2} <= 3 with distinct labels.
        let g = OrderGraph::from_dag_edges(4, &[(0, 1, Lt), (0, 2, Lt), (1, 3, Le), (2, 3, Le)])
            .unwrap();
        MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1]), ps(&[2]), ps(&[3])])
    }

    #[test]
    fn initial_antichain_and_ids() {
        let db = diamond();
        let sc = DisjunctiveScaffold::new(&db);
        assert_eq!(sc.initial_t(), &[0]);
        let pairs = sc.pairs();
        assert_ne!(pairs.empty_id(), pairs.initial_id());
        assert_eq!(pairs.arena().verts(pairs.empty_id()), &[] as &[u32]);
        assert_eq!(pairs.arena().up(pairs.initial_id()).len(), 4);
    }

    #[test]
    fn pair_info_matches_direct_computation() {
        let db = diamond();
        let sc = DisjunctiveScaffold::new(&db);
        let mut pairs = sc.pairs();
        let (e, i) = (pairs.empty_id(), pairs.initial_id());
        // (∅, min): D(S,T) = ∅ \ D = ∅ — no commit, one move (vertex 0).
        let idx = pairs.ensure(&sc, &db, e, i);
        let info = pairs.info(idx);
        assert!(info.dst_empty);
        assert!(info.label.is_empty());
        assert_eq!(info.moves.len(), 1);
        let (s2, t2) = info.moves[0];
        // Moving 0 across: S' = {0}, T' = min(D \ {0}) = {1, 2}.
        assert_eq!(pairs.arena().verts(s2), &[0]);
        assert_eq!(pairs.arena().verts(t2), &[1, 2]);
        // ({0}, {1,2}): D(S,T) = {0}, label = labels[0]; 1 and 2 are
        // reached through `<` edges, so no further move is minor.
        let idx2 = pairs.ensure(&sc, &db, s2, t2);
        let info2 = pairs.info(idx2);
        assert!(!info2.dst_empty);
        assert_eq!(info2.label, ps(&[0]));
        assert!(info2.moves.is_empty());
    }

    #[test]
    fn memoization_returns_same_index() {
        let db = diamond();
        let sc = DisjunctiveScaffold::new(&db);
        let mut pairs = sc.pairs();
        let (e, i) = (pairs.empty_id(), pairs.initial_id());
        let a = pairs.ensure(&sc, &db, e, i);
        let b = pairs.ensure(&sc, &db, e, i);
        assert_eq!(a, b);
        assert_eq!(pairs.pair_count(), 1);
    }

    #[test]
    fn sub_scaffold_blocks_exactly_ne_merging_commits() {
        // The diamond with 1 != 2: the pair can only merge when both sit
        // in one committed D(S,T).
        let mut db = diamond();
        db.ne.push((1, 2));
        let sc = DisjunctiveScaffold::new(&db);
        let sub = SubScaffold::project(&sc, &db);
        assert!(!sub.is_unrestricted());
        let mut pairs = sub.pairs();
        let (e, i) = (pairs.empty_id(), pairs.initial_id());
        // Build ({0}, {1,2}) by the single move from (∅, min).
        let idx = pairs.ensure(&sc, &db, e, i);
        let (s2, t2) = pairs.info(idx).moves[0];
        // Commit of D(S,T) = {0}: no constrained pair inside — allowed.
        let idx2 = pairs.ensure(&sc, &db, s2, t2);
        assert!(!pairs.info(idx2).ne_blocked);
        assert!(!sub.blocks(pairs.info(idx2)));
        // (min, ∅): D(S,T) is the whole dag, containing 1 and 2 — blocked.
        let idx3 = pairs.ensure(&sc, &db, i, e);
        assert!(pairs.info(idx3).ne_blocked);
        assert!(sub.blocks(pairs.info(idx3)));
        // The unrestricted view of the same scaffold never blocks, even
        // though the pair table carries the blocked bit.
        let ne_free = MonadicDatabase::new(db.graph.as_ref().clone(), db.labels.clone());
        let free = SubScaffold::project(&sc, &ne_free);
        assert!(free.is_unrestricted());
        assert!(!free.blocks(pairs.info(idx3)));
        assert!(std::ptr::eq(free.parent(), &sc));
    }

    #[test]
    fn ne_free_database_has_no_blocked_pairs() {
        let db = diamond();
        let sc = DisjunctiveScaffold::new(&db);
        let sub = SubScaffold::project(&sc, &db);
        assert!(sub.is_unrestricted());
        let mut pairs = sub.pairs();
        let (e, i) = (pairs.empty_id(), pairs.initial_id());
        let idx = pairs.ensure(&sc, &db, i, e);
        assert!(!pairs.info(idx).ne_blocked);
    }

    #[test]
    fn contended_lock_falls_back_to_local_table() {
        let db = diamond();
        let sc = DisjunctiveScaffold::new(&db);
        assert_eq!(sc.contention_fallbacks(), 0);
        let first = sc.pairs();
        let second = sc.pairs();
        assert!(matches!(first, PairsHandle::Shared(_)));
        assert!(matches!(second, PairsHandle::Local(_)));
        assert_eq!(sc.contention_fallbacks(), 1, "fallback is counted");
        // The local table is self-consistent: same canonical ids.
        assert_eq!(first.empty_id(), second.empty_id());
        assert_eq!(first.initial_id(), second.initial_id());
    }

    /// Warms every reachable pair of a database so a patch has real state
    /// to invalidate selectively.
    fn warm_all_pairs(sc: &DisjunctiveScaffold, db: &MonadicDatabase) {
        let mut pairs = sc.pairs();
        let (e, i) = (pairs.empty_id(), pairs.initial_id());
        let mut stack = vec![(e, i)];
        let mut seen = std::collections::HashSet::new();
        while let Some((s, t)) = stack.pop() {
            if !seen.insert((s, t)) {
                continue;
            }
            let idx = pairs.ensure(sc, db, s, t);
            let moves = pairs.info(idx).moves.clone();
            for (s2, t2) in moves {
                stack.push((s2, t2));
                stack.push((e, t2)); // post-commit shape
            }
        }
    }

    #[test]
    fn order_edge_patch_matches_fresh_rebuild() {
        // Two unordered chains 0<1 and 2<3; warm every pair, then link
        // the chains with 1 -> 2 and check the patched scaffold against
        // both the validator and a fresh scaffold's verdict state.
        let g = OrderGraph::from_dag_edges(4, &[(0, 1, Lt), (2, 3, Lt)]).unwrap();
        let mut db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1]), ps(&[2]), ps(&[0, 2])]);
        let mut sc = DisjunctiveScaffold::new(&db);
        warm_all_pairs(&sc, &db);
        let warm_pairs = sc.cached_pair_count();
        assert!(warm_pairs > 3, "the workload warmed real state");

        let (outcome, changed) =
            Arc::make_mut(&mut db.graph).insert_dag_edge_tracked(1, 2, Lt, sc.reach_mut());
        assert_eq!(outcome, EdgeInsert::New);
        assert_eq!(changed.iter().collect::<Vec<_>>(), vec![0, 1]);
        sc.patch_order_edge(&db, 1, 2, outcome, &changed);
        sc.validate(&db).expect("patched scaffold is consistent");
        assert_eq!(sc.reach(), db.graph.reachability());
        // Selectivity: pairs whose regions exclude vertex 1 survived.
        assert!(
            sc.cached_pair_count() > 0,
            "patch must not clear the whole table"
        );
        assert!(sc.cached_pair_count() < warm_pairs, "some pairs evicted");
    }

    #[test]
    fn antichain_that_becomes_a_chain_is_tombstoned() {
        // Two incomparable vertices {0, 1}: interned as an antichain.
        // Adding 0 -> 1 turns it into a chain; the entry must die and
        // every pair touching it must recompute.
        let g = OrderGraph::from_dag_edges(2, &[]).unwrap();
        let mut db = MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1])]);
        let mut sc = DisjunctiveScaffold::new(&db);
        warm_all_pairs(&sc, &db);
        let chain_id = {
            let pairs = sc.pairs();
            pairs.initial_id() // min(D) = {0, 1}
        };
        let (outcome, changed) =
            Arc::make_mut(&mut db.graph).insert_dag_edge_tracked(0, 1, Lt, sc.reach_mut());
        sc.patch_order_edge(&db, 0, 1, outcome, &changed);
        sc.validate(&db).expect("patched scaffold is consistent");
        let pairs = sc.pairs();
        assert!(
            !pairs.arena().is_live(chain_id),
            "the merged antichain {{0,1}} must be tombstoned"
        );
        assert_eq!(pairs.arena().verts(pairs.initial_id()), &[0]);
    }

    #[test]
    fn label_patch_updates_exactly_the_covering_pairs() {
        let mut db = diamond();
        let mut sc = DisjunctiveScaffold::new(&db);
        warm_all_pairs(&sc, &db);
        // Insert predicate 7 at vertex 2 (one of the middle vertices).
        db.labels[2].insert(PredSym::from_index(7));
        sc.patch_label_insert(2, PredSym::from_index(7));
        sc.validate(&db).expect("patched labels are consistent");
    }

    #[test]
    fn ne_bits_resync_lazily_after_epoch_bump() {
        let mut db = diamond();
        let mut sc = DisjunctiveScaffold::new(&db);
        // Warm the (min, ∅) pair: D(S,T) is the whole dag.
        let idx = {
            let mut pairs = sc.pairs();
            let (e, i) = (pairs.empty_id(), pairs.initial_id());
            let idx = pairs.ensure(&sc, &db, i, e);
            assert!(!pairs.info(idx).ne_blocked);
            idx
        };
        db.ne.push((1, 2));
        sc.note_ne_mutation();
        let mut pairs = sc.pairs();
        let (e, i) = (pairs.empty_id(), pairs.initial_id());
        let again = pairs.ensure(&sc, &db, i, e);
        assert_eq!(again, idx, "same memoized slot");
        assert!(
            pairs.info(again).ne_blocked,
            "stale bit must resync on access"
        );
    }

    #[test]
    fn max_pairs_evicts_lru_between_runs_and_recomputes() {
        let db = diamond();
        let sc = DisjunctiveScaffold::new(&db).with_max_pairs(Some(1));
        // One run warms several pairs (the cap is not enforced mid-run).
        warm_all_pairs(&sc, &db);
        let warmed = sc.cached_pair_count();
        assert!(warmed > 1);
        // Next acquisition trims to the single hottest pair...
        let hot = {
            let mut pairs = sc.pairs();
            assert_eq!(pairs.pair_count(), 1);
            assert_eq!(pairs.evictions(), (warmed - 1) as u64);
            // Evicted slots release their heap payload (the cap bounds
            // resident memory, not just the index).
            for &idx in &pairs.free {
                let info = &pairs.infos[idx as usize];
                assert!(info.moves.is_empty(), "evicted slot keeps its moves");
            }
            let (e, i) = (pairs.empty_id(), pairs.initial_id());
            // ...and evicted pairs recompute transparently.
            let idx = pairs.ensure(&sc, &db, e, i);
            let info = pairs.info(idx);
            assert_eq!(info.moves.len(), 1);
            pairs.pair_count()
        };
        assert!(hot <= 2);
    }
}
