//! Database-dependent, query-independent tables for the Theorem 5.3
//! disjunctive product search.
//!
//! The Thm 5.3 search explores tuples `(S, T, u₁…uₙ, x₁…xₙ)` whose first
//! two components are **antichains** of the database dag. Everything the
//! search derives from `(S, T)` alone — the up-sets `D↾S`, `D↾T`, the
//! provisional-point label `a(S,T)` (union of labels over
//! `D(S,T) = (D↾S)\(D↾T)`), and the (a)-transition targets obtained by
//! moving a minor vertex of `T` across — depends only on the *database*,
//! never on the query. Under repeated-query traffic (the
//! [`crate::session::Session`] serving pattern) recomputing those tables
//! per query is the dominant cost, so this module hoists them into a
//! [`DisjunctiveScaffold`]:
//!
//! * [`AntichainArena`] interns each antichain once, as a dense `u32` id
//!   with its vertex list and cached up-set — search states then carry two
//!   ids instead of two `Vec<u32>`s;
//! * [`PairTable`] memoizes, per `(S, T)` id pair, the label `a(S,T)`,
//!   whether `D(S,T)` is empty, and the interned `(S', T')` targets of
//!   every (a)-move;
//! * the scaffold itself precomputes the reachability closure, one
//!   topological order, and the initial antichain `min(D)` — the
//!   per-state `up_set`/`minor_within` graph traversals of the
//!   pre-interning engine all collapse into bitset unions over these.
//!
//! The pair table grows monotonically and is shared across queries
//! through a mutex: a search takes the lock for its whole run via
//! [`DisjunctiveScaffold::pairs`], and concurrent searches on one session
//! fall back to a private table instead of serializing. Its size is
//! bounded by the number of reachable `(S, T)` pairs — the `|D|^{2k}`
//! factor of Theorem 5.3 — i.e. by the state count of the largest search
//! run so far, never more.
//!
//! ## Sub-scaffolds (§7 `!=` restrictions)
//!
//! A database `!=` constraint (§7) excludes exactly the minimal models
//! that merge the constrained pair into one point — in search terms, the
//! (c)-commits whose committed set `D(S,T)` contains both ends of the
//! pair. A [`SubScaffold`] projects a scaffold onto that restricted
//! region: same dag, so the parent's reachability closure, topological
//! order, interned antichain arena, and `(S, T)` move tables are reused
//! verbatim; the only per-expansion state is one *blocked-commit* bit
//! per `(S, T)` pair ([`PairInfo::ne_blocked`]), grown lazily alongside
//! the pair table and invalidated with it. The view itself is two
//! words, so [`crate::session::Session::sub_scaffold`] re-projects it
//! per evaluation for free — prepared `!=` queries hit warm
//! sub-scaffold state without recomputing anything database-sized.

use crate::bitset::BitSet;
use crate::bitset::PredSet;
use crate::fxhash::FxHashMap;
use crate::monadic::MonadicDatabase;
use std::sync::{Mutex, MutexGuard};

/// Interned antichains of one database dag: each distinct antichain gets a
/// dense `u32` id, its sorted vertex list, and its cached up-set `D↾S`.
#[derive(Debug, Default)]
pub struct AntichainArena {
    ids: FxHashMap<Box<[u32]>, u32>,
    verts: Vec<Box<[u32]>>,
    ups: Vec<BitSet>,
}

impl AntichainArena {
    /// Interns `verts` (sorted ascending) with its already-known up-set.
    /// The up-set is trusted: callers derive it from an up-closed set
    /// whose minimal vertices are exactly `verts`.
    pub fn intern(&mut self, verts: Vec<u32>, up: BitSet) -> u32 {
        debug_assert!(verts.windows(2).all(|w| w[0] < w[1]), "sorted antichain");
        let key: Box<[u32]> = verts.into_boxed_slice();
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = u32::try_from(self.verts.len()).expect("antichain arena overflow");
        self.ids.insert(key.clone(), id);
        self.verts.push(key);
        self.ups.push(up);
        id
    }

    /// The sorted vertex list of an interned antichain.
    pub fn verts(&self, id: u32) -> &[u32] {
        &self.verts[id as usize]
    }

    /// The cached up-set `D↾S` of an interned antichain.
    pub fn up(&self, id: u32) -> &BitSet {
        &self.ups[id as usize]
    }

    /// Number of interned antichains.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }
}

/// The query-independent facts about one `(S, T)` pair of antichains.
#[derive(Debug)]
pub struct PairInfo {
    /// `a(S,T)`: the union of labels over `D(S,T) = (D↾S)\(D↾T)` — the
    /// provisional label of the next model point.
    pub label: PredSet,
    /// True when `D(S,T)` is empty (no (c)-commit edge fires).
    pub dst_empty: bool,
    /// True when `D(S,T)` contains both ends of some `!=` pair of the
    /// database (§7): committing it would merge a constrained pair into
    /// one model point, so a [`SubScaffold`] projected onto the
    /// separating region blocks the (c)-commit here. Always `false` for
    /// `[<,<=]` databases. A contradictory pair `(v, v)` blocks every
    /// commit containing `v`, making the final state unreachable — the
    /// search then correctly reports the unsatisfiable database as
    /// entailing everything.
    pub ne_blocked: bool,
    /// The `(S', T')` antichain-id targets of every (a)-move: one per
    /// minor vertex of `T` within `D↾S ∪ D↾T`, in `T`-vertex order.
    pub moves: Vec<(u32, u32)>,
}

/// Memoized `(S, T)` pair facts over an [`AntichainArena`].
#[derive(Debug, Default)]
pub struct PairTable {
    arena: AntichainArena,
    empty_id: u32,
    initial_id: u32,
    pair_of: FxHashMap<(u32, u32), u32>,
    infos: Vec<PairInfo>,
}

impl PairTable {
    fn new(n: usize, initial_t: &[u32]) -> Self {
        let mut arena = AntichainArena::default();
        let empty_id = arena.intern(Vec::new(), BitSet::with_capacity(n));
        // `D↾min(D)` is the whole dag: every vertex is reachable from a
        // minimal one.
        let initial_id = arena.intern(initial_t.to_vec(), BitSet::full(n));
        PairTable {
            arena,
            empty_id,
            initial_id,
            pair_of: FxHashMap::default(),
            infos: Vec::new(),
        }
    }

    /// Id of the empty antichain (the final `S = T = ∅` components).
    pub fn empty_id(&self) -> u32 {
        self.empty_id
    }

    /// Id of the initial antichain `min(D)`.
    pub fn initial_id(&self) -> u32 {
        self.initial_id
    }

    /// The interning arena (read access for search-side assertions).
    pub fn arena(&self) -> &AntichainArena {
        &self.arena
    }

    /// Number of memoized pairs.
    pub fn pair_count(&self) -> usize {
        self.infos.len()
    }

    /// Index of the pair `(s, t)`, computing and memoizing its
    /// [`PairInfo`] on first use. `scaffold` and `db` must be the ones
    /// this table was created for.
    pub fn ensure(
        &mut self,
        scaffold: &DisjunctiveScaffold,
        db: &MonadicDatabase,
        s: u32,
        t: u32,
    ) -> u32 {
        if let Some(&idx) = self.pair_of.get(&(s, t)) {
            return idx;
        }
        let info = self.compute(scaffold, db, s, t);
        let idx = u32::try_from(self.infos.len()).expect("pair table overflow");
        self.infos.push(info);
        self.pair_of.insert((s, t), idx);
        idx
    }

    /// The memoized facts of pair index `idx` (from [`PairTable::ensure`]).
    pub fn info(&self, idx: u32) -> &PairInfo {
        &self.infos[idx as usize]
    }

    fn compute(
        &mut self,
        scaffold: &DisjunctiveScaffold,
        db: &MonadicDatabase,
        s: u32,
        t: u32,
    ) -> PairInfo {
        debug_assert_eq!(db.graph.len(), scaffold.n, "scaffold/database mismatch");
        let up_s = self.arena.up(s).clone();
        let up_t = self.arena.up(t).clone();
        // a(S,T) over D(S,T) = (D↾S) \ (D↾T).
        let mut dst = up_s.clone();
        dst.difference_with(&up_t);
        let mut label = PredSet::new();
        for v in dst.iter() {
            label.union_with(&db.labels[v]);
        }
        let dst_empty = dst.is_empty();
        let ne_blocked = !dst_empty
            && db
                .ne
                .iter()
                .any(|&(a, b)| dst.contains(a) && dst.contains(b));
        // (a)-moves: each minor vertex v of T within D↾S ∪ D↾T crosses to
        // the S side; both sides stay represented by the minimal vertices
        // of their (still up-closed) regions.
        let mut region = up_s.clone();
        region.union_with(&up_t);
        let minors = db.graph.minor_within_order(&region, &scaffold.topo);
        let t_verts: Vec<u32> = self.arena.verts(t).to_vec();
        let mut moves = Vec::with_capacity(t_verts.len());
        for &v in &t_verts {
            if !minors.contains(v as usize) {
                continue;
            }
            let mut up_s2 = up_s.clone();
            up_s2.union_with(&scaffold.reach[v as usize]);
            let s2_verts: Vec<u32> = db
                .graph
                .minimal_within(&up_s2)
                .iter()
                .map(|w| w as u32)
                .collect();
            let s2 = self.arena.intern(s2_verts, up_s2);
            // v is minimal within D↾T, so removing it keeps the set
            // up-closed.
            let mut up_t2 = up_t.clone();
            up_t2.remove(v as usize);
            let t2_verts: Vec<u32> = db
                .graph
                .minimal_within(&up_t2)
                .iter()
                .map(|w| w as u32)
                .collect();
            let t2 = self.arena.intern(t2_verts, up_t2);
            moves.push((s2, t2));
        }
        PairInfo {
            label,
            dst_empty,
            ne_blocked,
            moves,
        }
    }
}

/// A scaffold view projecting a parent [`DisjunctiveScaffold`] onto the
/// expansion-restricted region of the database's `!=` constraints (§7):
/// the models that separate every constrained pair. The dag is
/// unchanged, so the parent's reachability closure, topological order,
/// interned antichain arena, and memoized `(S, T)` move tables serve
/// unmodified — the restriction reduces to blocking the (c)-commits
/// whose committed set contains a constrained pair, read off
/// [`PairInfo::ne_blocked`]. The view itself is two words; all
/// database-sized state stays in (and is shared through) the parent.
#[derive(Debug, Clone, Copy)]
pub struct SubScaffold<'a> {
    parent: &'a DisjunctiveScaffold,
    /// True when the database constrains at least one pair; an
    /// unrestricted view never blocks, even though the pair table
    /// carries blocked bits for the database's `!=` pairs.
    enforce: bool,
}

impl<'a> SubScaffold<'a> {
    /// Projects `parent` onto the region separating `db`'s `!=` pairs —
    /// the identity view for `[<,<=]` databases. `parent` must be the
    /// scaffold of `db` (the blocked bits memoized in its pair table are
    /// computed from `db.ne`).
    pub fn project(parent: &'a DisjunctiveScaffold, db: &MonadicDatabase) -> Self {
        debug_assert_eq!(parent.n, db.graph.len(), "scaffold/database mismatch");
        SubScaffold {
            parent,
            enforce: !db.ne.is_empty(),
        }
    }

    /// The parent scaffold (reachability, topo order, arena, pair
    /// tables).
    pub fn parent(&self) -> &'a DisjunctiveScaffold {
        self.parent
    }

    /// True when no `!=` pair is enforced (the view is the parent).
    pub fn is_unrestricted(&self) -> bool {
        !self.enforce
    }

    /// Takes the parent's shared pair table for one search run (see
    /// [`DisjunctiveScaffold::pairs`]).
    pub fn pairs(&self) -> PairsHandle<'a> {
        self.parent.pairs()
    }

    /// True when the (c)-commit of this `(S, T)` pair is blocked: its
    /// committed set would merge a `!=`-constrained pair.
    pub fn blocks(&self, info: &PairInfo) -> bool {
        self.enforce && info.ne_blocked
    }
}

/// A locked (or private) [`PairTable`] handed to one search run.
#[derive(Debug)]
pub enum PairsHandle<'a> {
    /// The session-shared table, held for the duration of the search.
    Shared(MutexGuard<'a, PairTable>),
    /// A private table: the shared one was contended by a concurrent
    /// search on the same scaffold.
    Local(PairTable),
}

impl std::ops::Deref for PairsHandle<'_> {
    type Target = PairTable;

    fn deref(&self) -> &PairTable {
        match self {
            PairsHandle::Shared(g) => g,
            PairsHandle::Local(t) => t,
        }
    }
}

impl std::ops::DerefMut for PairsHandle<'_> {
    fn deref_mut(&mut self) -> &mut PairTable {
        match self {
            PairsHandle::Shared(g) => g,
            PairsHandle::Local(t) => t,
        }
    }
}

/// Everything the Theorem 5.3 search derives from the database alone,
/// computed once per [`crate::session::Session`] (or once per one-shot
/// call) and reused by every disjunctive evaluation. See the module docs.
#[derive(Debug)]
pub struct DisjunctiveScaffold {
    n: usize,
    /// Reachability closure of the dag: `reach[v]` = vertices reachable
    /// from `v`, inclusive.
    reach: Vec<BitSet>,
    /// One topological order (feeds `minor_within_order`).
    topo: Vec<u32>,
    /// The initial antichain `min(D)`, sorted.
    initial_t: Vec<u32>,
    pairs: Mutex<PairTable>,
}

impl DisjunctiveScaffold {
    /// Builds the scaffold of a monadic database.
    pub fn new(db: &MonadicDatabase) -> Self {
        let n = db.graph.len();
        let reach = db.graph.reachability();
        let topo: Vec<u32> = db.graph.topo_order().iter().map(|&v| v as u32).collect();
        let initial_t: Vec<u32> = db
            .graph
            .minimal_vertices()
            .iter()
            .map(|v| v as u32)
            .collect();
        let pairs = Mutex::new(PairTable::new(n, &initial_t));
        DisjunctiveScaffold {
            n,
            reach,
            topo,
            initial_t,
            pairs,
        }
    }

    /// Number of dag vertices the scaffold was built for.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The reachability closure.
    pub fn reach(&self) -> &[BitSet] {
        &self.reach
    }

    /// The initial antichain `min(D)`.
    pub fn initial_t(&self) -> &[u32] {
        &self.initial_t
    }

    /// Takes the shared pair table for one search run, falling back to a
    /// fresh private table when another search currently holds it (so
    /// concurrent queries on one session never serialize on the lock).
    pub fn pairs(&self) -> PairsHandle<'_> {
        match self.pairs.try_lock() {
            Ok(guard) => PairsHandle::Shared(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => PairsHandle::Shared(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => {
                PairsHandle::Local(PairTable::new(self.n, &self.initial_t))
            }
        }
    }

    /// Number of `(S, T)` pairs memoized so far (observability hook; 0
    /// until the first disjunctive search runs).
    pub fn cached_pair_count(&self) -> usize {
        match self.pairs.try_lock() {
            Ok(g) => g.pair_count(),
            Err(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::OrderRel::{Le, Lt};
    use crate::ordgraph::OrderGraph;
    use crate::sym::PredSym;

    fn ps(ids: &[usize]) -> PredSet {
        ids.iter().map(|&i| PredSym::from_index(i)).collect()
    }

    fn diamond() -> MonadicDatabase {
        // 0 < {1, 2} <= 3 with distinct labels.
        let g = OrderGraph::from_dag_edges(4, &[(0, 1, Lt), (0, 2, Lt), (1, 3, Le), (2, 3, Le)])
            .unwrap();
        MonadicDatabase::new(g, vec![ps(&[0]), ps(&[1]), ps(&[2]), ps(&[3])])
    }

    #[test]
    fn initial_antichain_and_ids() {
        let db = diamond();
        let sc = DisjunctiveScaffold::new(&db);
        assert_eq!(sc.initial_t(), &[0]);
        let pairs = sc.pairs();
        assert_ne!(pairs.empty_id(), pairs.initial_id());
        assert_eq!(pairs.arena().verts(pairs.empty_id()), &[] as &[u32]);
        assert_eq!(pairs.arena().up(pairs.initial_id()).len(), 4);
    }

    #[test]
    fn pair_info_matches_direct_computation() {
        let db = diamond();
        let sc = DisjunctiveScaffold::new(&db);
        let mut pairs = sc.pairs();
        let (e, i) = (pairs.empty_id(), pairs.initial_id());
        // (∅, min): D(S,T) = ∅ \ D = ∅ — no commit, one move (vertex 0).
        let idx = pairs.ensure(&sc, &db, e, i);
        let info = pairs.info(idx);
        assert!(info.dst_empty);
        assert!(info.label.is_empty());
        assert_eq!(info.moves.len(), 1);
        let (s2, t2) = info.moves[0];
        // Moving 0 across: S' = {0}, T' = min(D \ {0}) = {1, 2}.
        assert_eq!(pairs.arena().verts(s2), &[0]);
        assert_eq!(pairs.arena().verts(t2), &[1, 2]);
        // ({0}, {1,2}): D(S,T) = {0}, label = labels[0]; 1 and 2 are
        // reached through `<` edges, so no further move is minor.
        let idx2 = pairs.ensure(&sc, &db, s2, t2);
        let info2 = pairs.info(idx2);
        assert!(!info2.dst_empty);
        assert_eq!(info2.label, ps(&[0]));
        assert!(info2.moves.is_empty());
    }

    #[test]
    fn memoization_returns_same_index() {
        let db = diamond();
        let sc = DisjunctiveScaffold::new(&db);
        let mut pairs = sc.pairs();
        let (e, i) = (pairs.empty_id(), pairs.initial_id());
        let a = pairs.ensure(&sc, &db, e, i);
        let b = pairs.ensure(&sc, &db, e, i);
        assert_eq!(a, b);
        assert_eq!(pairs.pair_count(), 1);
    }

    #[test]
    fn sub_scaffold_blocks_exactly_ne_merging_commits() {
        // The diamond with 1 != 2: the pair can only merge when both sit
        // in one committed D(S,T).
        let mut db = diamond();
        db.ne.push((1, 2));
        let sc = DisjunctiveScaffold::new(&db);
        let sub = SubScaffold::project(&sc, &db);
        assert!(!sub.is_unrestricted());
        let mut pairs = sub.pairs();
        let (e, i) = (pairs.empty_id(), pairs.initial_id());
        // Build ({0}, {1,2}) by the single move from (∅, min).
        let idx = pairs.ensure(&sc, &db, e, i);
        let (s2, t2) = pairs.info(idx).moves[0];
        // Commit of D(S,T) = {0}: no constrained pair inside — allowed.
        let idx2 = pairs.ensure(&sc, &db, s2, t2);
        assert!(!pairs.info(idx2).ne_blocked);
        assert!(!sub.blocks(pairs.info(idx2)));
        // (min, ∅): D(S,T) is the whole dag, containing 1 and 2 — blocked.
        let idx3 = pairs.ensure(&sc, &db, i, e);
        assert!(pairs.info(idx3).ne_blocked);
        assert!(sub.blocks(pairs.info(idx3)));
        // The unrestricted view of the same scaffold never blocks, even
        // though the pair table carries the blocked bit.
        let ne_free = MonadicDatabase::new(db.graph.clone(), db.labels.clone());
        let free = SubScaffold::project(&sc, &ne_free);
        assert!(free.is_unrestricted());
        assert!(!free.blocks(pairs.info(idx3)));
        assert!(std::ptr::eq(free.parent(), &sc));
    }

    #[test]
    fn ne_free_database_has_no_blocked_pairs() {
        let db = diamond();
        let sc = DisjunctiveScaffold::new(&db);
        let sub = SubScaffold::project(&sc, &db);
        assert!(sub.is_unrestricted());
        let mut pairs = sub.pairs();
        let (e, i) = (pairs.empty_id(), pairs.initial_id());
        let idx = pairs.ensure(&sc, &db, i, e);
        assert!(!pairs.info(idx).ne_blocked);
    }

    #[test]
    fn contended_lock_falls_back_to_local_table() {
        let db = diamond();
        let sc = DisjunctiveScaffold::new(&db);
        let first = sc.pairs();
        let second = sc.pairs();
        assert!(matches!(first, PairsHandle::Shared(_)));
        assert!(matches!(second, PairsHandle::Local(_)));
        // The local table is self-consistent: same canonical ids.
        assert_eq!(first.empty_id(), second.empty_id());
        assert_eq!(first.initial_id(), second.initial_id());
    }
}
