//! Flexi-words (§4 of the paper).
//!
//! Given a set `Pred` of monadic predicates, with `A = P(Pred)` the set of
//! labels, a **flexi-word** is a sequence
//!
//! ```text
//! a₁ r₁ a₂ r₂ … rₙ₋₁ aₙ       aᵢ ∈ A,  rᵢ ∈ {<, <=}
//! ```
//!
//! Flexi-words perspicuously represent three different things at once:
//! sequential queries, width-one monadic databases, and finite models
//! (whose relations are all `<`). The paper freely switches between these
//! readings and so does this crate: [`FlexiWord::to_query`] and
//! [`FlexiWord::to_database`] produce the other representations.
//!
//! A flexi-word whose relations are all `<` is called a **word**; for words
//! entailment coincides with the *subword* relation (Prop. 4.5), which
//! [`FlexiWord::is_subword_of`] implements.

use crate::atom::OrderRel;
use crate::bitset::PredSet;
use crate::error::{CoreError, Result};
use crate::model::MonadicModel;
use crate::sym::Vocabulary;
use std::fmt;

/// A flexi-word over the monadic predicate alphabet.
///
/// Invariant: `rels.len() + 1 == labels.len()`, unless the word is empty
/// (both empty). Relations are only `<` / `<=` (never `!=`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FlexiWord {
    labels: Vec<PredSet>,
    rels: Vec<OrderRel>,
}

impl FlexiWord {
    /// The empty flexi-word.
    pub fn empty() -> Self {
        FlexiWord::default()
    }

    /// A one-letter flexi-word.
    pub fn letter(a: PredSet) -> Self {
        FlexiWord {
            labels: vec![a],
            rels: Vec::new(),
        }
    }

    /// Builds a *word*: all relations strict.
    pub fn word(labels: Vec<PredSet>) -> Self {
        let rels = vec![OrderRel::Lt; labels.len().saturating_sub(1)];
        FlexiWord { labels, rels }
    }

    /// Builds from interleaved labels and relations.
    ///
    /// # Panics
    /// If lengths are inconsistent or a relation is `!=`.
    pub fn new(labels: Vec<PredSet>, rels: Vec<OrderRel>) -> Self {
        assert_eq!(
            rels.len() + usize::from(!labels.is_empty()),
            labels.len().max(1),
            "flexi-word shape: n labels need n-1 relations"
        );
        assert!(
            rels.iter().all(|r| *r != OrderRel::Ne),
            "!= cannot occur in a flexi-word"
        );
        FlexiWord { labels, rels }
    }

    /// Appends a letter with the given relation to the previous letter.
    pub fn push(&mut self, rel: OrderRel, label: PredSet) {
        assert!(rel != OrderRel::Ne);
        if self.labels.is_empty() {
            self.labels.push(label);
        } else {
            self.rels.push(rel);
            self.labels.push(label);
        }
    }

    /// Number of letters.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when there are no letters.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label sequence.
    pub fn labels(&self) -> &[PredSet] {
        &self.labels
    }

    /// The relation sequence (`len()-1` long).
    pub fn rels(&self) -> &[OrderRel] {
        &self.rels
    }

    /// True when every relation is `<` (the word case).
    pub fn is_word(&self) -> bool {
        self.rels.iter().all(|r| *r == OrderRel::Lt)
    }

    /// The suffix starting at letter `i` (shares no storage; small words).
    pub fn suffix(&self, i: usize) -> FlexiWord {
        if i >= self.labels.len() {
            return FlexiWord::empty();
        }
        FlexiWord {
            labels: self.labels[i..].to_vec(),
            rels: self.rels[i.min(self.rels.len())..].to_vec(),
        }
    }

    /// Subword test for **words** (Prop. 4.5): `self = a₁…aₙ` is a subword
    /// of `other = b₁…bₘ` iff there are indices `i₁ < … < iₙ` with
    /// `aⱼ ⊆ b_{iⱼ}`. For words `q |= p` iff `p` is a subword of `q`.
    ///
    /// # Panics
    /// If either flexi-word is not a word.
    pub fn is_subword_of(&self, other: &FlexiWord) -> bool {
        assert!(
            self.is_word() && other.is_word(),
            "subword is defined on words"
        );
        let mut j = 0;
        for b in &other.labels {
            if j == self.labels.len() {
                break;
            }
            if self.labels[j].is_subset(b) {
                j += 1;
            }
        }
        j == self.labels.len()
    }

    /// Reads a flexi-word off a finite monadic model (all relations `<`).
    pub fn from_model(m: &MonadicModel) -> FlexiWord {
        FlexiWord::word(m.labels.clone())
    }

    /// Interprets the flexi-word as a finite model. Only valid for words
    /// (models have strictly increasing points).
    pub fn to_model(&self) -> Result<MonadicModel> {
        if !self.is_word() {
            return Err(CoreError::NotSequential);
        }
        Ok(MonadicModel::new(self.labels.clone()))
    }

    /// Interprets the flexi-word as a width-one monadic database.
    pub fn to_database(&self) -> crate::monadic::MonadicDatabase {
        crate::monadic::MonadicDatabase::from_flexiword(self)
    }

    /// Interprets the flexi-word as a sequential monadic query.
    pub fn to_query(&self) -> crate::monadic::MonadicQuery {
        crate::monadic::MonadicQuery::from_flexiword(self)
    }

    /// Renders e.g. `{P,Q} < {P} <= {R}`.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> impl fmt::Display + 'a {
        DisplayFw { w: self, voc }
    }
}

struct DisplayFw<'a> {
    w: &'a FlexiWord,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayFw<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.w.labels.iter().enumerate() {
            if i > 0 {
                write!(f, " {} ", self.w.rels[i - 1])?;
            }
            write!(f, "{{")?;
            for (j, p) in l.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.voc.pred_name(p))?;
            }
            write!(f, "}}")?;
        }
        if self.w.labels.is_empty() {
            write!(f, "ε")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::PredSym;

    fn ps(ids: &[usize]) -> PredSet {
        ids.iter().map(|&i| PredSym::from_index(i)).collect()
    }

    #[test]
    fn construction_and_shape() {
        let mut w = FlexiWord::empty();
        assert!(w.is_empty());
        w.push(OrderRel::Lt, ps(&[0]));
        w.push(OrderRel::Le, ps(&[1]));
        assert_eq!(w.len(), 2);
        assert_eq!(w.rels(), &[OrderRel::Le]);
        assert!(!w.is_word());
        let v = FlexiWord::word(vec![ps(&[0]), ps(&[1])]);
        assert!(v.is_word());
    }

    #[test]
    #[should_panic(expected = "flexi-word shape")]
    fn bad_shape_panics() {
        let _ = FlexiWord::new(vec![ps(&[0])], vec![OrderRel::Lt]);
    }

    #[test]
    fn subword_positive_paper_example() {
        // [P,Q][P][R] is a subword of [P,Q,R][R][P,R][P,Q,R]  (§4).
        let p = 0;
        let q = 1;
        let r = 2;
        let small = FlexiWord::word(vec![ps(&[p, q]), ps(&[p]), ps(&[r])]);
        let big = FlexiWord::word(vec![ps(&[p, q, r]), ps(&[r]), ps(&[p, r]), ps(&[p, q, r])]);
        assert!(small.is_subword_of(&big));
        assert!(!big.is_subword_of(&small));
    }

    #[test]
    fn subword_requires_order() {
        let a = FlexiWord::word(vec![ps(&[0]), ps(&[1])]);
        let b = FlexiWord::word(vec![ps(&[1]), ps(&[0])]);
        assert!(!a.is_subword_of(&b));
        assert!(a.is_subword_of(&a));
        assert!(FlexiWord::empty().is_subword_of(&a));
    }

    #[test]
    fn greedy_subword_is_correct_here() {
        // Greedy matching is complete for the subset-subword relation:
        // matching a letter as early as possible never hurts.
        let small = FlexiWord::word(vec![ps(&[0]), ps(&[0])]);
        let big = FlexiWord::word(vec![ps(&[0]), ps(&[1]), ps(&[0])]);
        assert!(small.is_subword_of(&big));
    }

    #[test]
    fn suffix_behaviour() {
        let w = FlexiWord::new(
            vec![ps(&[0]), ps(&[1]), ps(&[2])],
            vec![OrderRel::Lt, OrderRel::Le],
        );
        let s = w.suffix(1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.rels(), &[OrderRel::Le]);
        assert!(w.suffix(3).is_empty());
        assert_eq!(w.suffix(0), w);
    }

    #[test]
    fn model_round_trip() {
        let w = FlexiWord::word(vec![ps(&[0, 1]), ps(&[2])]);
        let m = w.to_model().unwrap();
        assert_eq!(FlexiWord::from_model(&m), w);
        let fw = FlexiWord::new(vec![ps(&[0]), ps(&[1])], vec![OrderRel::Le]);
        assert!(fw.to_model().is_err());
    }

    #[test]
    fn display_renders() {
        let mut voc = Vocabulary::new();
        let p = voc.monadic_pred("P");
        let q = voc.monadic_pred("Q");
        let w = FlexiWord::new(
            vec![[p, q].into_iter().collect(), PredSet::singleton(q)],
            vec![OrderRel::Le],
        );
        assert_eq!(w.display(&voc).to_string(), "{P,Q} <= {Q}");
        assert_eq!(FlexiWord::empty().display(&voc).to_string(), "ε");
    }
}
