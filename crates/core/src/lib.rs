//! # indord-core
//!
//! Data model and combinatorial substrate for **indefinite order databases**,
//! after Ron van der Meyden, *"The Complexity of Querying Indefinite Data
//! about Linearly Ordered Domains"* (PODS 1992 / JCSS 54, 1997).
//!
//! An indefinite order database is a finite set of ground *proper atoms*
//! (ordinary facts such as `InCompound(t1, t2, agentA)`) together with
//! *order atoms* `u < v` and `u <= v` over a special sort of **order
//! constants** — null-like values denoting unknown points of a linearly
//! ordered domain (time, positions in a sequence, stratigraphic depth, ...).
//! The database only pins down a *partial* order; query answering asks what
//! holds in **every** compatible linear order (certain-answer semantics).
//!
//! This crate provides:
//!
//! * [`sym`] — interned symbols and the two-sorted [`sym::Vocabulary`];
//! * [`bitset`] — dense bitsets used for label sets and reachability;
//! * [`chunked`] — structurally-shared append-only logs (the fact-store
//!   container behind O(changed) session snapshots);
//! * [`fxhash`] — the fast in-process hasher backing the interning tables;
//! * [`atom`] / [`database`] — ground facts and the [`database::Database`] type;
//! * [`query`] — positive existential queries, DNF normal form,
//!   tightness (Prop. 2.2) and fullness (§2) transforms;
//! * [`ordgraph`] — the order dag: normalization rules N1/N2, consistency,
//!   derived-atom closure, width (maximum antichain), minor vertices;
//! * [`toposort`] — the paper's generalized topological sorts (rules S1/S2)
//!   and exhaustive minimal-model enumeration (Prop. 2.8);
//! * [`model`] — finite models, minimal models, and model checking;
//! * [`flexi`] — flexi-words `A·({<,<=}·A)*` (§4) and the subword relation;
//! * [`monadic`] — labelled-dag views of monadic databases and queries and
//!   the `Paths(·)` decomposition (Lemma 4.1);
//! * [`scaffold`] — database-dependent, query-independent search tables
//!   for the Theorem 5.3 disjunctive engine (cached by [`session::Session`]);
//! * [`counters`] — thread-local engine counters (states expanded,
//!   pair-table hits/misses) read per-request by the serving layer;
//! * [`parse`] — a small text syntax for databases and queries.
//!
//! Entailment engines live in the companion crate `indord-entail`; the
//! order-type semantics (`Fin`/`Z`/`Q`, §2 of the paper) in
//! `indord-semantics`.
//!
//! ## Example
//!
//! ```
//! use indord_core::prelude::*;
//!
//! let mut voc = Vocabulary::new();
//! let db = parse_database(
//!     &mut voc,
//!     "P(u); Q(v); u < v;",
//! ).unwrap();
//! let q = parse_query(&mut voc, "exists s t. P(s) & s < t & Q(t)").unwrap();
//! // `db` has a single minimal model shape: P then Q, so the query is
//! // certain. (Engines in indord-entail decide this; here we just build.)
//! assert_eq!(db.order_constant_count(), 2);
//! assert_eq!(q.disjuncts().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atom;
pub mod bitset;
pub mod chunked;
pub mod counters;
pub mod database;
pub mod error;
pub mod flexi;
pub mod fxhash;
pub mod intervals;
pub mod model;
pub mod monadic;
pub mod ordgraph;
pub mod parse;
pub mod query;
pub mod scaffold;
pub mod session;
pub mod sym;
pub mod toposort;

/// Convenient re-exports of the most common types.
pub mod prelude {
    pub use crate::atom::{OrderAtom, OrderRel, ProperAtom, Term};
    pub use crate::database::Database;
    pub use crate::error::{CoreError, Result};
    pub use crate::flexi::FlexiWord;
    pub use crate::model::{FiniteModel, MonadicModel};
    pub use crate::monadic::{MonadicDatabase, MonadicQuery};
    pub use crate::ordgraph::OrderGraph;
    pub use crate::parse::{parse_database, parse_query};
    pub use crate::query::{ConjunctiveQuery, DnfQuery, QueryExpr};
    pub use crate::session::Session;
    pub use crate::sym::{ObjSym, OrdSym, PredSym, Sort, Vocabulary};
}
