//! Structurally-shared append-only logs.
//!
//! [`ChunkedLog`] is the fact-store container behind the copy-on-write
//! snapshot story: an append-only sequence stored as a list of *sealed*,
//! immutable, `Arc`-shared chunks plus one mutable tail. Cloning a log
//! bumps one reference count per sealed chunk and copies only the tail
//! (at most [`CHUNK`]` - 1` elements), so a session snapshot
//! ([`crate::session::Session::freeze`]) shares the overwhelming bulk of
//! the fact store with the writer instead of deep-copying it — and the
//! writer's next append never disturbs a chunk a snapshot can see,
//! because sealed chunks are never mutated.
//!
//! Chunk boundaries are a deterministic function of the length (a chunk
//! seals exactly when it reaches [`CHUNK`] elements), so two logs with
//! equal content have equal structure and maximal sharing opportunity.

use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// Elements per sealed chunk. Snapshot clones copy at most `CHUNK - 1`
/// tail elements; bigger chunks mean fewer `Arc`s per clone but a larger
/// worst-case tail copy.
pub const CHUNK: usize = 64;

/// An append-only log of `T` with O(sealed-chunks) structural-sharing
/// clones. See the module docs.
pub struct ChunkedLog<T> {
    /// Full, immutable chunks of exactly [`CHUNK`] elements each.
    sealed: Vec<Arc<Vec<T>>>,
    /// The mutable tail, always shorter than [`CHUNK`].
    tail: Vec<T>,
}

impl<T> ChunkedLog<T> {
    /// An empty log.
    pub fn new() -> Self {
        ChunkedLog {
            sealed: Vec::new(),
            tail: Vec::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.sealed.len() * CHUNK + self.tail.len()
    }

    /// True when the log holds no elements.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    /// Appends an element (amortized O(1); seals the tail into an
    /// immutable shared chunk when it fills).
    pub fn push(&mut self, value: T) {
        self.tail.push(value);
        if self.tail.len() == CHUNK {
            let full = std::mem::take(&mut self.tail);
            self.sealed.push(Arc::new(full));
        }
    }

    /// The element at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<&T> {
        let (c, i) = (index / CHUNK, index % CHUNK);
        if c < self.sealed.len() {
            self.sealed[c].get(i)
        } else if c == self.sealed.len() {
            self.tail.get(i)
        } else {
            None
        }
    }

    /// Iterates the elements in insertion order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            log: self,
            front: 0,
            back: self.len(),
        }
    }

    /// Number of sealed chunks shared (pointer-equal) with `other` —
    /// the structural-sharing observability hook behind the snapshot
    /// proptests: after a freeze, writer and snapshot share every sealed
    /// chunk, and appends on either side never unshare old ones.
    pub fn shared_chunks_with(&self, other: &ChunkedLog<T>) -> usize {
        self.sealed
            .iter()
            .zip(other.sealed.iter())
            .take_while(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Number of sealed chunks (each holding exactly [`CHUNK`] elements).
    pub fn sealed_chunks(&self) -> usize {
        self.sealed.len()
    }
}

impl<T> Default for ChunkedLog<T> {
    fn default() -> Self {
        ChunkedLog::new()
    }
}

impl<T: Clone> Clone for ChunkedLog<T> {
    fn clone(&self) -> Self {
        ChunkedLog {
            sealed: self.sealed.clone(),
            tail: self.tail.clone(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for ChunkedLog<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq> PartialEq for ChunkedLog<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .sealed
                .iter()
                .zip(other.sealed.iter())
                .all(|(a, b)| Arc::ptr_eq(a, b) || a == b)
            && self.tail == other.tail
    }
}

impl<T: Eq> Eq for ChunkedLog<T> {}

impl<T> Index<usize> for ChunkedLog<T> {
    type Output = T;

    fn index(&self, index: usize) -> &T {
        self.get(index).expect("ChunkedLog index out of bounds")
    }
}

impl<T> Extend<T> for ChunkedLog<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T> FromIterator<T> for ChunkedLog<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut log = ChunkedLog::new();
        log.extend(iter);
        log
    }
}

/// Borrowing iterator over a [`ChunkedLog`], in insertion order.
pub struct Iter<'a, T> {
    log: &'a ChunkedLog<T>,
    front: usize,
    back: usize,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.front >= self.back {
            return None;
        }
        let v = &self.log[self.front];
        self.front += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl<T> ExactSizeIterator for Iter<'_, T> {}

impl<'a, T> DoubleEndedIterator for Iter<'a, T> {
    fn next_back(&mut self) -> Option<&'a T> {
        if self.front >= self.back {
            return None;
        }
        self.back -= 1;
        Some(&self.log[self.back])
    }
}

impl<'a, T> IntoIterator for &'a ChunkedLog<T> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_index_iterate_across_chunk_boundaries() {
        let mut log = ChunkedLog::new();
        let n = 3 * CHUNK + 7;
        for i in 0..n {
            log.push(i);
        }
        assert_eq!(log.len(), n);
        assert_eq!(log.sealed_chunks(), 3);
        assert!(!log.is_empty());
        for i in 0..n {
            assert_eq!(log[i], i);
        }
        assert_eq!(log.get(n), None);
        let collected: Vec<usize> = log.iter().copied().collect();
        assert_eq!(collected, (0..n).collect::<Vec<_>>());
        let backwards: Vec<usize> = log.iter().rev().copied().collect();
        assert_eq!(backwards, (0..n).rev().collect::<Vec<_>>());
        assert_eq!(log.iter().len(), n);
    }

    #[test]
    fn clone_shares_sealed_chunks_and_appends_never_unshare() {
        let mut log: ChunkedLog<usize> = (0..2 * CHUNK + 3).collect();
        let snap = log.clone();
        assert_eq!(log.shared_chunks_with(&snap), 2);
        assert_eq!(log, snap);
        // Appends on the writer (even sealing a new chunk) leave the
        // snapshot's view of the old chunks intact and shared.
        for i in 0..2 * CHUNK {
            log.push(i);
        }
        assert_eq!(log.shared_chunks_with(&snap), 2);
        assert_eq!(snap.len(), 2 * CHUNK + 3);
        assert_ne!(log, snap);
    }

    #[test]
    fn equality_is_content_based() {
        let a: ChunkedLog<u32> = (0..100).collect();
        let b: ChunkedLog<u32> = (0..100).collect();
        assert_eq!(a, b);
        assert_eq!(a.shared_chunks_with(&b), 0, "equal but unshared");
        let c: ChunkedLog<u32> = (0..101).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn extend_and_from_iterator() {
        let mut a = ChunkedLog::new();
        a.extend(0..10u32);
        assert_eq!(a.len(), 10);
        let b: ChunkedLog<u32> = (0..10).collect();
        assert_eq!(a, b);
        assert_eq!(format!("{:?}", ChunkedLog::<u32>::default()), "[]");
    }
}
