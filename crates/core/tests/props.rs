//! Property tests for the core combinatorial substrate.

use indord_core::atom::OrderRel;
use indord_core::bitset::BitSet;
use indord_core::ordgraph::OrderGraph;
use indord_core::toposort;
use proptest::prelude::*;

/// Random forward-edge dags on up to `max_n` vertices.
fn dag(max_n: usize) -> impl Strategy<Value = OrderGraph> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(
            (
                0..n * n,
                prop_oneof![Just(OrderRel::Lt), Just(OrderRel::Le)],
            ),
            0..=2 * n,
        )
        .prop_map(move |raw| {
            let mut edges = Vec::new();
            for (code, rel) in raw {
                let (i, j) = (code / n, code % n);
                if i < j {
                    edges.push((i, j, rel));
                }
            }
            OrderGraph::from_dag_edges(n, &edges).expect("forward edges are acyclic")
        })
    })
}

/// Brute-force maximum antichain via subset enumeration.
fn width_brute(g: &OrderGraph) -> usize {
    let n = g.len();
    let reach = g.reachability();
    let mut best = 0;
    for mask in 0u32..(1 << n) {
        let members: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        let ok = members
            .iter()
            .all(|&u| members.iter().all(|&v| u == v || !reach[u].contains(v)));
        if ok {
            best = best.max(members.len());
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Dilworth-based width equals brute-force maximum antichain.
    #[test]
    fn width_matches_brute_force(g in dag(7)) {
        prop_assert_eq!(g.width(), width_brute(&g));
    }

    /// Full closure is idempotent and only adds edges.
    #[test]
    fn full_closure_idempotent(g in dag(6)) {
        let full = g.full_closure();
        let full2 = full.full_closure();
        prop_assert_eq!(full.edge_count(), full2.edge_count());
        prop_assert!(full.edge_count() >= g.edge_count());
        // Every original edge is still implied (possibly strengthened).
        for (u, v, rel) in g.edges() {
            let found = full.edges().find(|&(a, b, _)| a == u && b == v);
            match found {
                Some((_, _, OrderRel::Lt)) => {}
                Some((_, _, r)) => prop_assert_eq!(r, rel),
                _ => prop_assert!(false, "edge {}->{} lost in closure", u, v),
            }
        }
    }

    /// Strict reachability is contained in reachability, and agrees with
    /// the closure's `<` edges.
    #[test]
    fn strictness_consistency(g in dag(6)) {
        let reach = g.reachability();
        let strict = g.strict_reachability();
        for u in 0..g.len() {
            prop_assert!(strict[u].is_subset(&reach[u]));
        }
        let full = g.full_closure();
        for (u, v, rel) in full.edges() {
            match rel {
                OrderRel::Lt => prop_assert!(strict[u].contains(v)),
                OrderRel::Le => prop_assert!(
                    reach[u].contains(v) && !strict[u].contains(v)
                ),
                OrderRel::Ne => prop_assert!(false, "closure cannot contain !="),
            }
        }
    }

    /// Every enumerated sort is a valid order-preserving onto map, and
    /// sorts are pairwise distinct.
    #[test]
    fn sorts_are_valid_and_distinct(g in dag(5)) {
        let mut seen = std::collections::HashSet::new();
        toposort::for_each_sort(&g, &mut |stage_of, n_stages| {
            // order preservation
            for (u, v, rel) in g.edges() {
                match rel {
                    OrderRel::Lt => assert!(stage_of[u] < stage_of[v]),
                    OrderRel::Le => assert!(stage_of[u] <= stage_of[v]),
                    OrderRel::Ne => unreachable!(),
                }
            }
            // onto
            let mut hit = vec![false; n_stages];
            for &s in stage_of {
                hit[s] = true;
            }
            assert!(hit.iter().all(|&b| b));
            assert!(seen.insert(stage_of.to_vec()), "duplicate sort");
            true
        })
        .unwrap();
        prop_assert!(!seen.is_empty(), "every dag has at least one sort");
    }

    /// The canonical sort uses the minimum number of stages among all
    /// enumerated sorts.
    #[test]
    fn canonical_sort_is_stage_minimal(g in dag(5)) {
        let canonical = toposort::canonical_sort(&g);
        let mut min_stages = usize::MAX;
        toposort::for_each_sort(&g, &mut |_, n_stages| {
            min_stages = min_stages.min(n_stages);
            true
        })
        .unwrap();
        prop_assert_eq!(canonical.n_stages, min_stages);
    }

    /// Minor vertices are exactly those reachable from no `<` edge:
    /// cross-check against a reachability-based definition.
    #[test]
    fn minor_vertices_characterization(g in dag(6)) {
        let minors = g.minor_vertices();
        let strict = g.strict_reachability();
        for v in 0..g.len() {
            let strictly_reached = (0..g.len()).any(|u| strict[u].contains(v));
            prop_assert_eq!(minors.contains(v), !strictly_reached, "vertex {}", v);
        }
    }

    /// `up_set` is monotone and contains its seed.
    #[test]
    fn up_set_properties(g in dag(6), seed_bits in 0u32..64) {
        let n = g.len();
        let seed: BitSet = (0..n).filter(|i| seed_bits & (1 << i) != 0).collect();
        let up = g.up_set(&seed);
        prop_assert!(seed.is_subset(&up));
        let reach = g.reachability();
        for v in 0..n {
            let expected = seed.iter().any(|s| reach[s].contains(v));
            prop_assert_eq!(up.contains(v), expected);
        }
    }

    /// Restriction to the full vertex set is the identity (up to order).
    #[test]
    fn restrict_identity(g in dag(6)) {
        let all = BitSet::full(g.len());
        let (sub, old_of) = g.restrict(&all);
        prop_assert_eq!(sub.len(), g.len());
        prop_assert_eq!(sub.edge_count(), g.edge_count());
        prop_assert_eq!(old_of, (0..g.len()).collect::<Vec<_>>());
    }
}

/// Normalization handles `<=`-cycles of every length.
#[test]
fn n1_collapses_long_cycles() {
    for len in 2..6usize {
        let mut edges: Vec<(usize, usize, OrderRel)> =
            (0..len).map(|i| (i, (i + 1) % len, OrderRel::Le)).collect();
        edges.push((0, len, OrderRel::Lt)); // plus a tail vertex
        let nz = OrderGraph::normalize(len + 1, &edges).unwrap();
        assert_eq!(
            nz.graph.len(),
            2,
            "cycle of length {len} collapses to one class"
        );
        assert_eq!(nz.graph.edge_count(), 1);
    }
}

/// Mixed cycles through `<` are always inconsistent.
#[test]
fn lt_cycles_rejected_at_any_length() {
    for len in 1..6usize {
        let mut edges: Vec<(usize, usize, OrderRel)> = (0..len.saturating_sub(1))
            .map(|i| (i, i + 1, OrderRel::Le))
            .collect();
        edges.push((len.saturating_sub(1), 0, OrderRel::Lt));
        assert!(
            OrderGraph::normalize(len.max(1), &edges).is_err(),
            "length {len}"
        );
    }
}
