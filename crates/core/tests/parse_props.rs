//! Property tests for the parser: display ∘ parse round trips, and the
//! parser never panics on random token soup.

use indord_core::parse::{parse_database, parse_query};
use indord_core::sym::Vocabulary;
use proptest::prelude::*;

/// A random database text over monadic predicates P/Q/R and constants
/// u0..u5, built from well-formed statements.
fn db_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..3, 0usize..6).prop_map(|(p, u)| { format!("{}(u{u});", ["P", "Q", "R"][p]) }),
            (0usize..6, 0usize..6, 0usize..3)
                .prop_map(|(a, b, r)| { format!("u{a} {} u{b};", ["<", "<=", "!="][r]) }),
        ],
        1..8,
    )
    .prop_map(|stmts| {
        // guarantee all constants are order-sorted
        let mut text = String::from("pred P(ord); pred Q(ord); pred R(ord);");
        for s in stmts {
            text.push_str(&s);
        }
        text
    })
}

/// A random well-formed query text over P/Q/R and E(obj, ord):
/// existentials, conjunctions, chains, `!=`, and nested disjunctions —
/// wide enough to hit DNF distribution, variable merging (N1), and
/// order-only variables.
fn query_text() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        (0usize..3, 0usize..4).prop_map(|(p, v)| format!("{}(v{v})", ["P", "Q", "R"][p])),
        (0usize..2, 0usize..4).prop_map(|(x, v)| format!("E(x{x}, v{v})")),
        (0usize..4, 0usize..3, 0usize..4)
            .prop_map(|(a, r, b)| format!("v{a} {} v{b}", ["<", "<=", "!="][r])),
        (0usize..3, 0usize..4, 0usize..3, 0usize..4).prop_map(|(p, v, q, w)| format!(
            "({}(v{v}) | {}(v{w}))",
            ["P", "Q", "R"][p],
            ["P", "Q", "R"][q]
        )),
    ];
    proptest::collection::vec(atom, 1..5)
        .prop_map(|atoms| format!("exists x0 x1 v0 v1 v2 v3. {}", atoms.join(" & ")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `parse ∘ display` is the identity on databases: the printed form
    /// carries `pred` declarations, so re-parsing under the same
    /// vocabulary rebuilds the database exactly, and re-parsing under a
    /// fresh vocabulary reprints identically.
    #[test]
    fn display_parse_round_trip(text in db_text()) {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, &text).unwrap();
        let printed = db.display(&voc).to_string();
        // Same vocabulary: exact identity, atom for atom.
        let db_same = parse_database(&mut voc, &printed).unwrap();
        prop_assert_eq!(&db, &db_same);
        // Fresh vocabulary: the printed form is self-contained (the
        // declarations pin every signature) and display-stable.
        let mut voc2 = Vocabulary::new();
        let db2 = parse_database(&mut voc2, &printed).unwrap();
        prop_assert_eq!(&printed, &db2.display(&voc2).to_string());
        prop_assert_eq!(db.proper_atoms().len(), db2.proper_atoms().len());
        prop_assert_eq!(db.order_atoms().len(), db2.order_atoms().len());
        prop_assert_eq!(
            db.normalize().is_ok(),
            db2.normalize().is_ok()
        );
    }

    /// `parse ∘ display` is the identity on (normal-form) queries: every
    /// `DnfQuery` the parser produces reprints to text that parses back
    /// to an equal value — disjunct for disjunct, atom for atom, with
    /// the same variable numbering (the display-canonical numbering
    /// established at normalization).
    #[test]
    fn query_display_parse_round_trip(text in query_text()) {
        let mut voc = Vocabulary::new();
        parse_database(
            &mut voc,
            "pred P(ord); pred Q(ord); pred R(ord); pred E(obj, ord);",
        )
        .unwrap();
        let q = match parse_query(&mut voc, &text) {
            Ok(q) => q,
            // Sort conflicts (a name used at both sorts) are fine to skip;
            // the property is about what the parser *produces*.
            Err(_) => return Ok(()),
        };
        if q.disjuncts().is_empty() {
            // Every disjunct was unsatisfiable; `false` has no syntax.
            return Ok(());
        }
        let printed = q.display(&voc).to_string();
        let q2 = parse_query(&mut voc, &printed).unwrap();
        prop_assert_eq!(&q, &q2, "printed: {}", printed);
        prop_assert_eq!(printed, q2.display(&voc).to_string());
    }

    /// The parser returns errors, never panics, on arbitrary input.
    #[test]
    fn parser_never_panics(input in "[a-z0-9<>=!&|();. ]{0,60}") {
        let mut voc = Vocabulary::new();
        let _ = parse_database(&mut voc, &input);
        let _ = parse_query(&mut voc, &input);
    }

    /// Query parsing of well-formed sequential queries always succeeds
    /// and produces tight, sequential disjuncts.
    #[test]
    fn sequential_query_parse(labels in proptest::collection::vec(0usize..3, 1..5)) {
        let mut voc = Vocabulary::new();
        parse_database(&mut voc, "pred P(ord); pred Q(ord); pred R(ord);").unwrap();
        let mut q = String::from("exists");
        for i in 0..labels.len() {
            q.push_str(&format!(" t{i}"));
        }
        q.push_str(". ");
        for (i, p) in labels.iter().enumerate() {
            if i > 0 {
                q.push_str(&format!("& t{} < t{i} ", i - 1));
            }
            q.push_str(&format!("& {}(t{i}) ", ["P", "Q", "R"][*p]));
        }
        let q = q.replacen(". & ", ". ", 1);
        let parsed = parse_query(&mut voc, &q).unwrap();
        prop_assert_eq!(parsed.disjuncts().len(), 1);
        prop_assert!(parsed.disjuncts()[0].is_sequential());
        prop_assert!(parsed.is_tight());
    }
}
