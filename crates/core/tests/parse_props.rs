//! Property tests for the parser: display ∘ parse round trips, and the
//! parser never panics on random token soup.

use indord_core::parse::{parse_database, parse_query};
use indord_core::sym::Vocabulary;
use proptest::prelude::*;

/// A random database text over monadic predicates P/Q/R and constants
/// u0..u5, built from well-formed statements.
fn db_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..3, 0usize..6).prop_map(|(p, u)| { format!("{}(u{u});", ["P", "Q", "R"][p]) }),
            (0usize..6, 0usize..6, 0usize..3)
                .prop_map(|(a, b, r)| { format!("u{a} {} u{b};", ["<", "<=", "!="][r]) }),
        ],
        1..8,
    )
    .prop_map(|stmts| {
        // guarantee all constants are order-sorted
        let mut text = String::from("pred P(ord); pred Q(ord); pred R(ord);");
        for s in stmts {
            text.push_str(&s);
        }
        text
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Parsing a printed database reproduces the same atoms (when the
    /// order atoms are consistent; inconsistent inputs simply fail to
    /// normalize, which is also checked to be stable).
    #[test]
    fn display_parse_round_trip(text in db_text()) {
        let mut voc = Vocabulary::new();
        let db = parse_database(&mut voc, &text).unwrap();
        let printed = db.display(&voc).to_string();
        let mut voc2 = Vocabulary::new();
        // re-parse needs the declarations again (display omits them)
        let full = format!("pred P(ord); pred Q(ord); pred R(ord);{printed}");
        let db2 = parse_database(&mut voc2, &full).unwrap();
        prop_assert_eq!(db.proper_atoms().len(), db2.proper_atoms().len());
        prop_assert_eq!(db.order_atoms().len(), db2.order_atoms().len());
        prop_assert_eq!(
            db.normalize().is_ok(),
            db2.normalize().is_ok()
        );
    }

    /// The parser returns errors, never panics, on arbitrary input.
    #[test]
    fn parser_never_panics(input in "[a-z0-9<>=!&|();. ]{0,60}") {
        let mut voc = Vocabulary::new();
        let _ = parse_database(&mut voc, &input);
        let _ = parse_query(&mut voc, &input);
    }

    /// Query parsing of well-formed sequential queries always succeeds
    /// and produces tight, sequential disjuncts.
    #[test]
    fn sequential_query_parse(labels in proptest::collection::vec(0usize..3, 1..5)) {
        let mut voc = Vocabulary::new();
        parse_database(&mut voc, "pred P(ord); pred Q(ord); pred R(ord);").unwrap();
        let mut q = String::from("exists");
        for i in 0..labels.len() {
            q.push_str(&format!(" t{i}"));
        }
        q.push_str(". ");
        for (i, p) in labels.iter().enumerate() {
            if i > 0 {
                q.push_str(&format!("& t{} < t{i} ", i - 1));
            }
            q.push_str(&format!("& {}(t{i}) ", ["P", "Q", "R"][*p]));
        }
        let q = q.replacen(". & ", ". ", 1);
        let parsed = parse_query(&mut voc, &q).unwrap();
        prop_assert_eq!(parsed.disjuncts().len(), 1);
        prop_assert!(parsed.disjuncts()[0].is_sequential());
        prop_assert!(parsed.is_tight());
    }
}
