//! Gene alignment (the paper's Example 1.2).
//!
//! Base sequences become width-one monadic chains; a *model* of their
//! union is an alignment (positions mapped to common columns). Integrity
//! constraints forbid unwanted alignments — e.g. pairing `A` with `G` —
//! as query disjuncts: an admissible alignment exists iff the constraint
//! query is **not** entailed, and the countermodels *are* the alignments.
//!
//! Run with `cargo run --example gene_alignment`.

use indord::core::atom::OrderRel;
use indord::core::bitset::PredSet;
use indord::core::flexi::FlexiWord;
use indord::core::model::MonadicModel;
use indord::core::monadic::{MonadicDatabase, MonadicQuery};
use indord::core::ordgraph::OrderGraph;
use indord::entail::disjunctive;
use indord::prelude::*;

fn main() {
    let mut voc = Vocabulary::new();
    let bases: Vec<PredSym> = ["C", "G", "A", "T"]
        .iter()
        .map(|b| voc.monadic_pred(b))
        .collect();
    let base_of = |c: char| -> PredSym {
        match c {
            'C' => bases[0],
            'G' => bases[1],
            'A' => bases[2],
            'T' => bases[3],
            _ => panic!("unknown base {c}"),
        }
    };

    let s1 = "GAT";
    let s2 = "GTA";
    println!("Aligning  s1 = {s1}  with  s2 = {s2}\n");

    // Each sequence s₁s₂…sₙ becomes facts s₁(u₁), …, sₙ(uₙ) with
    // u₁ < u₂ < … < uₙ; the union is a width-two database.
    let db = union_of_sequences(&[s1, s2], &base_of);
    assert_eq!(db.width(), 2);

    // Integrity constraints: no column may align A with G, nor C with T.
    let forbid = |x: PredSym, y: PredSym| -> MonadicQuery {
        let g = OrderGraph::from_dag_edges(1, &[]).expect("single vertex");
        MonadicQuery::new(g, vec![[x, y].into_iter().collect()])
    };
    let violations = vec![
        forbid(base_of('A'), base_of('G')),
        forbid(base_of('C'), base_of('T')),
    ];

    // An admissible alignment exists iff the violation query is NOT
    // entailed; every countermodel is an admissible alignment.
    let verdict = disjunctive::check(&db, &violations).expect("engine");
    match &verdict {
        MonadicVerdict::Entailed => {
            println!("No admissible alignment exists (every model violates).");
        }
        MonadicVerdict::Countermodel(m) => {
            println!("Admissible alignments exist. One of them:");
            print_alignment(&voc, m);
        }
    }
    assert!(!verdict.holds());

    // Enumerate several alignments (countermodels, Theorem 5.3's
    // polynomial-delay enumeration).
    let models = disjunctive::countermodels(&db, &violations, 5).expect("engine");
    println!("\nFirst {} admissible alignments:", models.len());
    for (i, m) in models.iter().enumerate() {
        println!("--- alignment {} ---", i + 1);
        print_alignment(&voc, m);
    }

    // A stricter constraint set that admits no alignment: in addition,
    // forbid *every* mixed column and demand… length mismatch suffices:
    // aligning "GA" with "TT" while forbidding G–T and A–T pairings and
    // any unmatched…  Simplest impossible case: align "G" with "A" while
    // forbidding the G–A pairing *and* requiring a single column by
    // construction — two one-letter sequences CAN still misalign into two
    // columns, so instead show entailment on the query "some column mixes
    // G and A, or some column holds G alone, or A alone" — a tautological
    // cover of all models:
    let g_alone = forbid(base_of('G'), base_of('G'));
    let a_alone = forbid(base_of('A'), base_of('A'));
    let mixed = forbid(base_of('G'), base_of('A'));
    let db2 = union_of_sequences(&["G", "A"], &base_of);
    let cover = disjunctive::check(&db2, &[g_alone, a_alone, mixed]).expect("engine");
    assert!(
        cover.holds(),
        "every alignment has a G column, an A column, or a mix"
    );
    println!(
        "\nSanity: every alignment of \"G\" and \"A\" shows G, A, or a mixed column — certain."
    );
}

fn union_of_sequences(seqs: &[&str], base_of: &dyn Fn(char) -> PredSym) -> MonadicDatabase {
    let mut labels: Vec<PredSet> = Vec::new();
    let mut edges: Vec<(usize, usize, OrderRel)> = Vec::new();
    for s in seqs {
        let start = labels.len();
        for (i, c) in s.chars().enumerate() {
            labels.push(PredSet::singleton(base_of(c)));
            if i > 0 {
                edges.push((start + i - 1, start + i, OrderRel::Lt));
            }
        }
    }
    let graph = OrderGraph::from_dag_edges(labels.len(), &edges).expect("chains");
    MonadicDatabase::new(graph, labels)
}

fn print_alignment(voc: &Vocabulary, m: &MonadicModel) {
    let _ = FlexiWord::from_model(m); // alignments are words
    let mut row = String::new();
    for l in &m.labels {
        let names: Vec<&str> = l.iter().map(|p| voc.pred_name(p)).collect();
        row.push_str(&format!("{:^5}", names.join("/")));
    }
    println!("  columns: {row}");
}
