//! Containment of conjunctive queries with inequalities — Klug's problem
//! (JACM 1988), connected to indefinite order databases by Prop. 2.10 and
//! settled as Π₂ᵖ-complete by Theorem 3.3.
//!
//! Run with `cargo run --example containment`.

use indord::core::parse::parse_query;
use indord::prelude::*;
use indord::relalg::{contained_in, entailment_as_containment, RelQuery};
use indord::solvers::formula::Formula;
use indord::solvers::qbf::Pi2;

fn main() {
    let mut voc = Vocabulary::new();
    voc.pred(
        "R",
        &[
            indord::core::sym::Sort::Object,
            indord::core::sym::Sort::Order,
        ],
    )
    .expect("signature");
    voc.pred(
        "S",
        &[
            indord::core::sym::Sort::Order,
            indord::core::sym::Sort::Order,
        ],
    )
    .expect("signature");

    let bool_query = |voc: &mut Vocabulary, text: &str| -> RelQuery {
        RelQuery::boolean(parse_query(voc, text).expect("query").disjuncts()[0].clone())
    };

    // 1. A containment that holds over every order type: tightening `<=`
    //    to `<` shrinks answers.
    let strict = bool_query(&mut voc, "exists x s t. R(x, s) & S(s, t) & s < t");
    let loose = bool_query(&mut voc, "exists x s t. R(x, s) & S(s, t) & s <= t");
    let yes = contained_in(&mut voc, &strict, &loose, OrderType::Fin).expect("decide");
    let no = contained_in(&mut voc, &loose, &strict, OrderType::Fin).expect("decide");
    println!("[Q<]  ⊆ [Q<=] over Fin:  {yes}");
    println!("[Q<=] ⊆ [Q<]  over Fin:  {no}");
    assert!(yes && !no);

    // 2. The order type matters: midpoint interpolation holds over the
    //    rationals only (Klug's semantics-sensitivity).
    let pair = bool_query(&mut voc, "exists s t. S(s, t) & s < t");
    let mid = bool_query(&mut voc, "exists s w t. S(s, t) & s < w & w < t");
    for (ot, name) in [
        (OrderType::Fin, "Fin"),
        (OrderType::Z, "Z"),
        (OrderType::Q, "Q"),
    ] {
        let held = contained_in(&mut voc, &pair, &mid, ot).expect("decide");
        println!("[s<t] ⊆ [∃w s<w<t] over {name:>3}: {held}");
        assert_eq!(held, matches!(ot, OrderType::Q));
    }

    // 3. Entailment instances are containment instances (Prop. 2.10): the
    //    embassy database entails its query iff the corresponding boolean
    //    queries are contained.
    let mut voc2 = Vocabulary::new();
    let db = indord::core::parse::parse_database(&mut voc2, "P(u); Q(v); u < v;").expect("db");
    let phi = parse_query(&mut voc2, "exists s t. P(s) & s < t & Q(t)")
        .expect("query")
        .disjuncts()[0]
        .clone();
    let (q1, q2) = entailment_as_containment(&mut voc2, &db, &phi).expect("reduce");
    let contained = contained_in(&mut voc2, &q1, &q2, OrderType::Fin).expect("decide");
    println!("\nProp 2.10 round-trip: D |= Φ as containment: {contained}");
    assert!(contained);

    // 4. The Π₂ᵖ-hardness: a true and a false Π₂ sentence, pushed through
    //    Theorem 3.3 and then through Prop. 2.10 into containment.
    let tautology = Pi2 {
        n_universal: 1,
        n_existential: 1,
        // ∀p ∃q (p ↔ q)
        matrix: Formula::Or(vec![
            Formula::And(vec![Formula::Var(0), Formula::Var(1)]),
            Formula::And(vec![
                Formula::Not(Box::new(Formula::Var(0))),
                Formula::Not(Box::new(Formula::Var(1))),
            ]),
        ]),
    };
    let falsity = Pi2 {
        n_universal: 1,
        n_existential: 0,
        matrix: Formula::Var(0),
    };
    for (pi2, name) in [(&tautology, "∀p∃q(p↔q)"), (&falsity, "∀p.p")] {
        let mut voc3 = Vocabulary::new();
        let inst = indord::reductions::thm33::build(&mut voc3, pi2);
        let (q1, q2) = entailment_as_containment(&mut voc3, &inst.db, &inst.query.disjuncts()[0])
            .expect("reduce");
        let contained = contained_in(&mut voc3, &q1, &q2, OrderType::Fin).expect("decide");
        println!("Π₂ sentence {name:<12} → containment: {contained}");
        assert_eq!(contained, pi2.is_true());
    }
    println!("\nContainment of conjunctive queries with inequalities thus");
    println!("inherits Π₂ᵖ-hardness — the lower bound Klug left open.");
}
