//! Archaeological seriation (§1 of the paper, after Kendall).
//!
//! Several excavation trenches each yield a stratigraphic column — a
//! *chain* of layers, oldest at the bottom. Artifact types label the
//! layers where they were found. The union of `k` trenches is a width-`k`
//! indefinite order database: layers within one trench are totally
//! ordered, layers of different trenches are not.
//!
//! Certain-answer queries then settle chronology questions: "is type X
//! certainly attested before type Y?", with countermodels exhibiting a
//! chronology in which the claim fails.
//!
//! Run with `cargo run --example seriation`.

use indord::entail::{bounded, paths, seq};
use indord::prelude::*;

fn main() {
    let mut voc = Vocabulary::new();

    // Three trenches; layers listed bottom (oldest) to top. Types:
    //   Cord = cord-decorated pottery, Bead = glass beads,
    //   Coin = silver coinage, Urn = burial urns.
    let db = parse_database(
        &mut voc,
        "
        // Trench I: Cord below Bead below Coin
        Cord(i1); Bead(i2); Coin(i3); i1 < i2 < i3;
        // Trench II: Cord below Bead&Urn layer
        Cord(j1); Bead(j2); Urn(j2); j1 < j2;
        // Trench III: Bead below Coin
        Bead(k1); Coin(k2); k1 < k2;
        ",
    )
    .expect("trenches are consistent");
    let nd = db.normalize().expect("consistent");
    println!(
        "Trenches recorded; database width = {} (three observers).",
        nd.width()
    );
    assert_eq!(nd.width(), 3);

    let mdb = indord::core::monadic::MonadicDatabase::from_normal(&voc, &nd)
        .expect("artifact types are monadic");

    let check = |voc: &mut Vocabulary, name: &str, text: &str, expect: bool| {
        let q = parse_query(voc, text).expect("query");
        let cq = &q.disjuncts()[0];
        let mq = indord::core::monadic::MonadicQuery::from_conjunctive(voc, cq).expect("monadic");
        // Decide with all three conjunctive engines — they must agree.
        let by_paths = paths::entails(&mdb, &mq);
        let by_bounded = bounded::entails(&mdb, &mq);
        assert_eq!(by_paths, by_bounded);
        if mq.is_sequential() {
            let fw = mq.to_flexiword().expect("sequential");
            assert_eq!(seq::entails(&mdb, &fw), by_paths);
        }
        println!(
            "{name:<48} {}",
            if by_paths { "certain" } else { "not certain" }
        );
        assert_eq!(by_paths, expect, "{name}");
        by_paths
    };

    check(
        &mut voc,
        "Cord-ware certainly predates some coinage",
        "exists x y. Cord(x) & x < y & Coin(y)",
        true,
    );
    check(
        &mut voc,
        "Cord-ware certainly predates the urns",
        "exists x y. Cord(x) & x < y & Urn(y)",
        true,
    );
    check(
        &mut voc,
        "Beads certainly predate some coinage",
        "exists x y. Bead(x) & x < y & Coin(y)",
        true,
    );
    check(
        &mut voc,
        "Urns certainly predate coinage",
        "exists x y. Urn(x) & x < y & Coin(y)",
        false,
    );
    check(
        &mut voc,
        "Some layer holds beads and urns together",
        "exists x. Bead(x) & Urn(x)",
        true,
    );
    // A branching (nonsequential) query: a Cord layer with a later Bead
    // layer and a later (possibly different) Urn layer.
    check(
        &mut voc,
        "Cord predates both beads and urns (branching)",
        "exists x y z. Cord(x) & x < y & Bead(y) & x < z & Urn(z)",
        true,
    );

    // Show a countermodel for the failing claim.
    let q = parse_query(&mut voc, "exists x y. Urn(x) & x < y & Coin(y)").expect("query");
    let mq = indord::core::monadic::MonadicQuery::from_conjunctive(&voc, &q.disjuncts()[0])
        .expect("monadic");
    if let MonadicVerdict::Countermodel(m) = bounded::check(&mdb, &mq) {
        println!("\nA chronology in which the urns do NOT predate coinage:");
        println!("  {}", m.display(&voc));
    } else {
        unreachable!("claim was not certain");
    }
}
