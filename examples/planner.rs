//! Nonlinear planning (§1 of the paper): a partially ordered plan's
//! executions are the compatible linear orders, so "does X happen before Y
//! in *every* execution?" is certain-answer entailment, and the
//! countermodel enumeration of Theorem 5.3 lists candidate schedules.
//!
//! Run with `cargo run --example planner`.

use indord::entail::disjunctive;
use indord::prelude::*;

fn main() {
    let mut voc = Vocabulary::new();

    // A kitchen plan: two cooks work in parallel.
    //   chop < fry < plate          (cook 1)
    //   boil < sauce < plate2?      (cook 2: boil, then sauce)
    //   fry and sauce both precede serving; chop precedes boil? unknown.
    let db = parse_database(
        &mut voc,
        "
        Chop(c); Fry(f); Boil(b); Sauce(s); Serve(v);
        c < f; b < s;
        f < v; s < v;
        ",
    )
    .expect("plan is consistent");
    println!("Plan steps and ordering constraints:\n{}", db.display(&voc));

    let certain = |voc: &mut Vocabulary, text: &str| -> bool {
        let q = parse_query(voc, text).expect("query");
        Engine::new(voc).entails_owned(&db, &q)
    };

    // Certain precedences.
    let cases = [
        (
            "Chop before Serve",
            "exists x y. Chop(x) & x < y & Serve(y)",
            true,
        ),
        (
            "Chop before Fry",
            "exists x y. Chop(x) & x < y & Fry(y)",
            true,
        ),
        (
            "Chop before Boil",
            "exists x y. Chop(x) & x < y & Boil(y)",
            false,
        ),
        (
            "Boil before Fry",
            "exists x y. Boil(x) & x < y & Fry(y)",
            false,
        ),
        (
            "Chop and Boil ever simultaneous or ordered either way",
            "(exists x. Chop(x) & Boil(x)) |
             (exists x y. Chop(x) & x <= y & Boil(y)) |
             (exists x y. Boil(x) & x <= y & Chop(y))",
            true,
        ),
    ];
    for (name, text, expect) in cases {
        let got = certain(&mut voc, text);
        println!("{name:<55} {}", if got { "certain" } else { "not certain" });
        assert_eq!(got, expect, "{name}");
    }

    // Enumerate possible schedules (minimal models) in which Boil strictly
    // precedes Fry — i.e. countermodels of "Fry before-or-with Boil".
    let mdb = indord::core::monadic::MonadicDatabase::from_normal(
        &voc,
        &db.normalize().expect("consistent"),
    )
    .expect("monadic");
    let fry_first = parse_query(
        &mut voc,
        "(exists x y. Fry(x) & x <= y & Boil(y)) | (exists x. Fry(x) & Boil(x))",
    )
    .expect("query");
    let disjuncts: Vec<_> = fry_first
        .disjuncts()
        .iter()
        .map(|cq| indord::core::monadic::MonadicQuery::from_conjunctive(&voc, cq).expect("monadic"))
        .collect();
    let schedules = disjunctive::countermodels(&mdb, &disjuncts, 10).expect("engine");
    println!(
        "\nSchedules in which Boil strictly precedes Fry ({}):",
        schedules.len()
    );
    for m in &schedules {
        println!("  {}", m.display(&voc));
    }
    assert!(!schedules.is_empty());
}

/// Small helper: entailment as a bool (panics on malformed input).
trait Entails {
    fn entails_owned(&self, db: &Database, q: &DnfQuery) -> bool;
}

impl Entails for Engine<'_> {
    fn entails_owned(&self, db: &Database, q: &DnfQuery) -> bool {
        self.entails(db, q).expect("engine").holds()
    }
}
