//! A monitoring service over an indefinite event stream: the
//! prepare-once / entail-many pattern.
//!
//! A lab instrument reports phases of an experiment (Heat, Hold, Cool)
//! at times that are only partially ordered — some sensors share clocks,
//! others don't. A fixed panel of alert queries runs after every batch
//! of observations. With [`Engine::prepare`] the queries are compiled
//! once; a [`Session`] keeps the normalized database warm between
//! batches and updates it in place where the order structure allows.
//!
//! Run with `cargo run --example prepared_service`.

use indord::prelude::*;

fn main() {
    let mut voc = Vocabulary::new();

    // Initial observations: one sensor saw Heat before Hold.
    let db = parse_database(
        &mut voc,
        "pred Heat(ord); pred Hold(ord); pred Cool(ord);
         Heat(t1); Hold(t2); t1 < t2;",
    )
    .expect("well-formed database");

    // The alert panel, parsed and compiled once. (The engine borrows the
    // vocabulary, so resolve every symbol the stream will need first.)
    let panel = [
        (
            "full-cycle ran",
            "exists a b c. Heat(a) & a < b & Hold(b) & b < c & Cool(c)",
        ),
        (
            "cooled after heating",
            "exists a b. Heat(a) & a < b & Cool(b)",
        ),
        ("re-heated", "exists a b. Cool(a) & a < b & Heat(b)"),
    ];
    let queries: Vec<(&str, DnfQuery)> = panel
        .iter()
        .map(|(name, text)| (*name, parse_query(&mut voc, text).expect("well-formed")))
        .collect();
    let (t2, t3) = (voc.ord("t2"), voc.ord("t3"));
    let heat = voc.find_pred("Heat").expect("declared");
    let cool = voc.find_pred("Cool").expect("declared");

    let engine = Engine::new(&voc);
    let prepared: Vec<(&str, PreparedQuery)> = queries
        .iter()
        .map(|(name, q)| (*name, engine.prepare(q).expect("compiles")))
        .collect();
    for (name, pq) in &prepared {
        println!("compiled {name:<22} -> plan {:?}", pq.plan());
    }

    let mut session = Session::new(db);
    report(&engine, &session, &prepared, "initial log");

    // Batch 2: the cool-down phase arrives, after the hold.
    session.assert_lt(t2, t3);
    session
        .insert_fact(&voc, cool, vec![indord::core::atom::Term::Ord(t3)])
        .expect("well-sorted fact");
    report(&engine, &session, &prepared, "after cool-down observed");

    // Batch 3: a second Heat reading lands on an already-known time
    // point — the session patches its cached views in place.
    assert!(session.is_warm());
    session
        .insert_fact(&voc, heat, vec![indord::core::atom::Term::Ord(t3)])
        .expect("well-sorted fact");
    assert!(session.is_warm(), "in-place insert kept the cache warm");
    report(&engine, &session, &prepared, "after second heat reading");

    println!(
        "\nepoch {} — {} atoms in the session",
        session.epoch(),
        session.len()
    );
}

fn report(engine: &Engine, session: &Session, prepared: &[(&str, PreparedQuery)], banner: &str) {
    println!("\n== {banner}");
    for (name, pq) in prepared {
        let verdict = engine.entails_prepared(session, pq).expect("engine");
        println!(
            "  {name:<22} {}",
            if verdict.holds() {
                "CERTAIN"
            } else {
                "not certain"
            }
        );
    }
}
