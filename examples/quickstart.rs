//! Quickstart: the embassy investigation of the paper's Example 1.1.
//!
//! A document was leaked overnight; the culprit must have been in the
//! compound twice. The guard's log and agent A's testimony only fix a
//! partial order on the relevant times, so the investigator must reason
//! over *all* compatible linear orders.
//!
//! Run with `cargo run --example quickstart`.

use indord::prelude::*;
use indord::semantics;

fn main() {
    let mut voc = Vocabulary::new();

    // IC(u, v, x): "x was in the compound continuously from time u to v".
    //
    // Guard's log:    IC(z1,z2,A), IC(z3,z4,B), z1<z2<z3<z4
    // A's testimony:  IC(u1,u3,A), IC(u2,u4,B), u1<u2<u3<u4
    let db = parse_database(
        &mut voc,
        "
        IC(z1, z2, A); IC(z3, z4, B); z1 < z2 < z3 < z4;
        IC(u1, u3, A); IC(u2, u4, B); u1 < u2 < u3 < u4;
        ",
    )
    .expect("well-formed database");
    println!("The evidence:\n{}", db.display(&voc));

    // Integrity constraint: overlapping-but-not-identical IC intervals for
    // the same agent are impossible. Rather than asserting ¬Ψ, the paper
    // disjoins the violation pattern Ψ onto every query:
    //     D ∧ ¬Ψ |= Φ   iff   D |= Ψ ∨ Φ.
    let violation = parse_query(
        &mut voc,
        "exists x t1 t2 t3 t4 w.
            IC(t1, t2, x) & IC(t3, t4, x) &
            t1 < w & w < t2 & t3 < w & w < t4 &
            (t1 < t3 | t2 < t4)",
    )
    .expect("well-formed constraint");

    // "Did someone enter the compound twice?" — Ψ ∨ ∃x Φ(x) where Φ(x)
    // says x was in over two intervals with distinct starting times.
    let somebody = parse_query(
        &mut voc,
        "exists x t1 t2 t3 t4.
            IC(t1, t2, x) & IC(t3, t4, x) & t1 < t3",
    )
    .expect("well-formed query");
    // Time is dense: evaluate under the rational-order semantics |=_Q
    // (the integrity constraint's interior witness w is a non-tight
    // variable, so the order type matters — §2 of the paper).
    let q_somebody = with_integrity_constraint(&violation, &somebody);
    let verdict = semantics::entails(&mut voc, &db, &q_somebody, OrderType::Q).expect("engine");
    println!(
        "Did someone enter twice?            {}",
        if verdict.holds() {
            "YES — certain"
        } else {
            "not certain"
        }
    );
    assert!(verdict.holds());

    // "Did agent A (respectively B) enter twice?" — Ψ ∨ Φ(A), Ψ ∨ Φ(B):
    // each fails, with a countermodel exonerating that agent.
    let phi_text =
        |who: &str| format!("exists t1 t2 t3 t4. IC(t1, t2, {who}) & IC(t3, t4, {who}) & t1 < t3");
    for who in ["A", "B"] {
        let (gdb, phi_who) = parse_query_with_db(&mut voc, &db, &phi_text(who)).expect("query");
        let q = with_integrity_constraint(&violation, &phi_who);
        let verdict = semantics::entails(&mut voc, &gdb, &q, OrderType::Q).expect("engine");
        println!(
            "Did agent {who} enter twice?           {}",
            if verdict.holds() {
                "YES — certain"
            } else {
                "not certain"
            }
        );
        assert!(!verdict.holds(), "not enough evidence against {who} alone");
        if let Verdict::NaryCountermodel(m) = verdict {
            println!(
                "  a consistent scenario where {who} entered once only:\n{}",
                indent(&m.display(&voc).to_string())
            );
        }
    }

    // "Did A or B enter twice?" — Ψ ∨ Φ(A) ∨ Φ(B): certain, even though
    // neither disjunct alone is. This is genuinely disjunctive knowledge.
    let (gdb1, phi_a) = parse_query_with_db(&mut voc, &db, &phi_text("A")).expect("query");
    let (gdb2, phi_b) = parse_query_with_db(&mut voc, &gdb1, &phi_text("B")).expect("query");
    let q_either = with_integrity_constraint(&violation, &phi_a.or(phi_b));
    let verdict = semantics::entails(&mut voc, &gdb2, &q_either, OrderType::Q).expect("engine");
    println!(
        "Did agent A or agent B enter twice? {}",
        if verdict.holds() {
            "YES — certain"
        } else {
            "not certain"
        }
    );
    assert!(verdict.holds());

    println!("\nConclusion: one of the two was in the compound twice; there");
    println!("is not yet enough evidence to charge either agent individually.");
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
